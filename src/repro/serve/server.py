"""Asyncio front end of the accuracy-serving subsystem.

Two entry points onto one :class:`~repro.serve.scheduler.ModeScheduler`:

* an **in-process API** -- ``await server.request(op, bits, cycles)`` --
  for applications living in the same interpreter;
* a **JSON-lines socket** -- one request object per line, one response
  object per line -- for everything else.  ``{"cmd": "stats"}`` returns
  the telemetry snapshot; ``{"cmd": "recalibrate"}`` forces one canary
  probe round when a recalibration loop is attached (a structured,
  recoverable ``recalibration_failed`` error frame otherwise).

All submissions funnel through one bounded queue drained by a single
worker task, which both serializes access to the (synchronous, virtual
time) scheduler and provides backpressure: when the queue is full the
request is *still answered* -- served immediately on the scheduler's
degraded path (static maximum-accuracy mode) instead of queueing, so an
overloaded server sheds precision headroom, never correctness.

When the scheduler runs the batch serve engine, the worker drains a
**batch window**: after the blocking get it opportunistically pulls up
to ``drain_window - 1`` more queued requests and serves the chunk
through :meth:`~repro.serve.scheduler.ModeScheduler.submit_batch` (with
the lookahead window clipped to zero, so decisions match the scalar
per-request drain bit for bit).  Requests no mode table can cover are
peeled out of the chunk and answered individually, exactly like the
scalar path.

Shutdown is graceful: in-flight requests finish, the socket closes, the
worker drains and exits.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.serve.errors import (
    ERROR_ACCURACY_VIOLATION,
    ERROR_BAD_JSON,
    ERROR_BAD_REQUEST,
    ERROR_NOT_OBJECT,
    ERROR_OVERSIZED_LINE,
    ERROR_RECALIBRATION_FAILED,
    RecalibrationError,
    error_payload,
)
from repro.serve.scheduler import (
    AccuracyViolation,
    ModeScheduler,
    ServedPhase,
    ServeRequest,
)

#: Default cap on one JSON-lines request (bytes, newline included).
DEFAULT_MAX_LINE_BYTES = 64 * 1024


def phase_to_dict(served: ServedPhase) -> dict:
    """Wire form of a served phase."""
    return {
        "operator": served.operator,
        "required_bits": served.required_bits,
        "served_bits": served.served_bits,
        "vdd": served.mode.vdd,
        "bb_config": list(served.mode.bb_config),
        "compute_energy_j": served.compute_energy_j,
        "transition_energy_j": served.transition_energy_j,
        "settle_ns": served.settle_ns,
        "queue_wait_ns": served.queue_wait_ns,
        "switched": served.switched,
        "batched": served.batched,
        "degraded": served.degraded,
        "margin_fallback": served.margin_fallback,
        "transition_retries": served.transition_retries,
    }


class AccuracyServer:
    """Serves accuracy-mode requests over asyncio (in-proc and socket)."""

    def __init__(
        self,
        scheduler: ModeScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 64,
        drain_delay_s: float = 0.0,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        drain_window: int = 32,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_line_bytes < 2:
            raise ValueError("max_line_bytes must be >= 2")
        if drain_window < 1:
            raise ValueError("drain_window must be >= 1")
        self.scheduler = scheduler
        self.host = host
        self._requested_port = port
        #: Artificial per-request drain pause (tests/benchmarks use it to
        #: force queue saturation deterministically).
        self.drain_delay_s = drain_delay_s
        self.max_line_bytes = max_line_bytes
        #: Max requests served as one batched frame per drain iteration
        #: (only reached when the scheduler runs the batch engine).
        self.drain_window = drain_window
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._worker is not None:
            raise RuntimeError("server already started")
        self._worker = asyncio.ensure_future(self._drain())
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=self.max_line_bytes,
        )

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Finish in-flight work, close the socket, stop the worker."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._worker is not None:
            await self._queue.join()
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None

    async def __aenter__(self) -> "AccuracyServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- in-process API ------------------------------------------------------

    async def request(
        self, operator: str, required_bits: int, cycles: int
    ) -> ServedPhase:
        """Serve one request; degrades instead of blocking when saturated."""
        if self._stopping:
            raise RuntimeError("server is stopping")
        req = ServeRequest(operator, required_bits, cycles)
        future = asyncio.get_event_loop().create_future()
        try:
            self._queue.put_nowait((req, future))
        except asyncio.QueueFull:
            return self.scheduler.submit_degraded(req)
        return await future

    def stats(self) -> dict:
        return self.scheduler.telemetry.snapshot()

    def recalibrate(self) -> dict:
        """Force one canary probe round; structured error when it can't.

        A failed probe is *recoverable* -- the guard keeps serving on
        its last committed (conservative) margins and the connection
        stays usable -- so the reply is an error frame, never a dropped
        connection.
        """
        recal = getattr(self.scheduler, "recal", None)
        if recal is None:
            self.scheduler.telemetry.bump("errors")
            return error_payload(
                ERROR_RECALIBRATION_FAILED,
                "no recalibration loop is attached; start the server "
                "with --recal-interval on a margin-compiled table",
            )
        try:
            recal.recalibrate(
                self.scheduler.latest_clock_ns(), self.scheduler.telemetry
            )
        except RecalibrationError as error:
            self.scheduler.telemetry.bump("errors")
            return error_payload(
                ERROR_RECALIBRATION_FAILED, f"recalibration failed: {error}"
            )
        return {"recalibrated": recal.snapshot()}

    # -- internals -----------------------------------------------------------

    async def _drain(self) -> None:
        batchable = (
            self.scheduler.serve_engine == "batch"
            and self.drain_window > 1
            and self.drain_delay_s == 0.0
        )
        while True:
            chunk = [await self._queue.get()]
            if batchable:
                while len(chunk) < self.drain_window:
                    try:
                        chunk.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            if len(chunk) == 1:
                req, future = chunk[0]
                try:
                    served = self.scheduler.submit(req)
                    if not future.done():
                        future.set_result(served)
                except Exception as error:  # surfaced to caller, not lost
                    if not future.done():
                        future.set_exception(error)
                finally:
                    self._queue.task_done()
            else:
                try:
                    self._serve_chunk(chunk)
                finally:
                    for _ in chunk:
                        self._queue.task_done()
            if self.drain_delay_s > 0.0:
                await asyncio.sleep(self.drain_delay_s)

    def _serve_chunk(self, chunk) -> None:
        """Serve one drained batch window through the batched kernel.

        ``upcoming_cap=0`` clips lookahead windows to empty, so every
        decision matches the per-request scalar drain (which submits
        with no upcoming context) bit for bit.  Requests whose bitwidth
        exceeds their operator's table split the chunk: the runs around
        them batch, they themselves go through ``submit`` so the
        resulting ``ValueError`` reaches only their own future.
        """
        scheduler = self.scheduler
        run: list = []

        def flush() -> None:
            if not run:
                return
            try:
                served = scheduler.submit_batch(
                    [r for r, _ in run], upcoming_cap=0
                )
            except Exception as error:
                # Only reachable with a custom policy whose pick violates
                # accuracy; the scalar loop inside submit_batch raised at
                # the offending request, so answer the whole run with it.
                for _, fut in run:
                    if not fut.done():
                        fut.set_exception(error)
            else:
                for (_, fut), phase in zip(run, served):
                    if not fut.done():
                        fut.set_result(phase)
            run.clear()

        for req, future in chunk:
            table = scheduler._state(req.operator).table
            if req.required_bits <= table.max_bits:
                run.append((req, future))
                continue
            flush()
            try:
                served = scheduler.submit(req)
                if not future.done():
                    future.set_result(served)
            except Exception as error:
                if not future.done():
                    future.set_exception(error)
        flush()

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    # EOF mid-line: a client that died after writing a
                    # partial request, or (common) one whose final line
                    # lacks the trailing newline.  Serve what arrived,
                    # then treat the connection as closed.
                    if eof.partial:
                        response = await self._handle_line(eof.partial)
                        await self._respond(writer, response)
                    break
                except asyncio.LimitOverrunError:
                    # The line is longer than the read buffer, so the
                    # stream cannot be resynchronized to the next
                    # newline; answer structurally, then drop the
                    # connection.
                    self.scheduler.telemetry.bump("errors")
                    await self._respond(
                        writer,
                        error_payload(
                            ERROR_OVERSIZED_LINE,
                            f"request line exceeds {self.max_line_bytes} "
                            "bytes; connection will close",
                            recoverable=False,
                        ),
                    )
                    break
                response = await self._handle_line(line)
                await self._respond(writer, response)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _respond(writer, response: dict) -> None:
        writer.write(json.dumps(response).encode() + b"\n")
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _handle_line(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            self.scheduler.telemetry.bump("errors")
            return error_payload(ERROR_BAD_JSON, f"bad json: {error}")
        if not isinstance(payload, dict):
            self.scheduler.telemetry.bump("errors")
            return error_payload(
                ERROR_NOT_OBJECT,
                f"expected a json object, got {type(payload).__name__}",
            )
        if payload.get("cmd") == "stats":
            return {"stats": self.stats()}
        if payload.get("cmd") == "recalibrate":
            return self.recalibrate()
        try:
            served = await self.request(
                str(payload["op"]),
                int(payload["bits"]),
                int(payload.get("cycles", 0)),
            )
            return phase_to_dict(served)
        except (KeyError, TypeError, ValueError) as error:
            self.scheduler.telemetry.bump("errors")
            return error_payload(ERROR_BAD_REQUEST, f"bad request: {error}")
        except AccuracyViolation as error:
            return error_payload(
                ERROR_ACCURACY_VIOLATION,
                f"accuracy violation: {error}",
                recoverable=False,
            )
