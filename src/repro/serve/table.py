"""Compiled, versioned mode-table artifact for the serving subsystem.

Exploration produces an :class:`~repro.core.exploration.ExplorationResult`;
serving wants something leaner and self-contained: the per-bitwidth
operating points, the physical metadata the bias hardware model needs
(per-domain well areas, FBB voltage, clock), and -- precomputed between
every pair of modes -- the transition energy/settling cost, including
VDD-rail re-targeting.  A :class:`ModeTable` freezes all of that into a
JSON-serializable artifact loadable without re-running the flow, so a
server process never imports the implementation stack.

The transition matrix is computed with the *same* routine the offline
:class:`~repro.core.runtime.AccuracyController` costs transitions with
(:func:`repro.core.runtime.pairwise_transition_cost`), which is what makes
the serve scheduler's greedy replay bit-identical to the legacy accounting.

Since schema 2 a table may also carry per-mode **slack margins**
(:class:`ModeMargin`) computed offline by Monte-Carlo timing
(:func:`compile_margins` over
:class:`repro.sta.variation.MonteCarloTiming`): the n-sigma worst-case
slack of each mode at its exploration corner.  The serve-side margin
guard (:mod:`repro.serve.guard`) compares them against runtime margin
erosion and falls back to a safer mode before timing is violated.
Schema-1 tables (no margins) still load and serve; the guard simply has
nothing to check and disables itself with a warning.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import OperatingPoint
from repro.core.exploration import ExplorationResult
from repro.core.flow import ImplementedDesign
from repro.core.runtime import (
    BiasGeneratorModel,
    measure_domain_areas,
    pairwise_transition_cost,
)
from repro.serve.errors import ServeError

#: Schema of the serialized artifact.  Bump on any layout change; loaders
#: reject a mismatch rather than guess.  Schema 2 added the optional
#: per-mode margin block; schema-1 artifacts are still readable (they
#: simply carry no margins).
MODE_TABLE_SCHEMA = 2

#: Schemas :meth:`ModeTable.from_dict` accepts.
COMPATIBLE_SCHEMAS = (1, MODE_TABLE_SCHEMA)


@dataclass(frozen=True)
class ModeMargin:
    """Sign-off slack margin of one compiled mode under Vth variation.

    ``guarded_slack_ps`` is the (1 - target_yield) quantile of the
    Monte-Carlo worst-slack distribution: the slack the n-sigma-worst
    fabricated instance still has.  The margin guard serves a mode only
    while runtime erosion has not consumed that slack.
    """

    guarded_slack_ps: float
    mean_slack_ps: float
    sigma_slack_ps: float
    timing_yield: float
    target_yield: float
    samples: int

    def __post_init__(self):
        if not 0.0 < self.target_yield < 1.0:
            raise ValueError("target_yield must be in (0, 1)")
        if not 0.0 <= self.timing_yield <= 1.0:
            raise ValueError("timing_yield must be in [0, 1]")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "guarded_slack_ps": self.guarded_slack_ps,
            "mean_slack_ps": self.mean_slack_ps,
            "sigma_slack_ps": self.sigma_slack_ps,
            "timing_yield": self.timing_yield,
            "target_yield": self.target_yield,
            "samples": self.samples,
        }

    @staticmethod
    def from_dict(data: Dict) -> "ModeMargin":
        return ModeMargin(
            guarded_slack_ps=float(data["guarded_slack_ps"]),
            mean_slack_ps=float(data["mean_slack_ps"]),
            sigma_slack_ps=float(data["sigma_slack_ps"]),
            timing_yield=float(data["timing_yield"]),
            target_yield=float(data["target_yield"]),
            samples=int(data["samples"]),
        )


@dataclass(frozen=True)
class TransitionCost:
    """Cost of moving the hardware between two compiled modes."""

    energy_j: float
    settle_ns: float

    @property
    def is_free(self) -> bool:
        return self.energy_j == 0.0 and self.settle_ns == 0.0


@dataclass(frozen=True)
class ModeTable:
    """A compiled accuracy-mode table for one operator.

    ``modes`` preserves the exploration's per-bitwidth insertion order so
    power ties in :meth:`mode_key_for` break exactly as the legacy
    controller breaks them.  ``transitions`` covers every ordered pair of
    mode keys (diagonal included, always free).
    """

    design_name: str
    fclk_ghz: float
    num_domains: int
    domain_areas_um2: Tuple[float, ...]
    fbb_voltage: float
    generator: BiasGeneratorModel
    modes: Mapping[int, OperatingPoint]
    transitions: Mapping[Tuple[int, int], TransitionCost] = field(repr=False)
    #: Optional per-mode n-sigma slack margins (schema 2).  ``None`` means
    #: "compiled without margins": the table serves, the guard disables.
    margins: Optional[Mapping[int, ModeMargin]] = None

    def __post_init__(self):
        if not self.modes:
            raise ValueError("mode table has no modes")
        for bits, point in self.modes.items():
            if point.active_bits != bits:
                raise ValueError(
                    f"mode key {bits} maps to a {point.active_bits}-bit point"
                )
        for a in self.modes:
            for b in self.modes:
                if (a, b) not in self.transitions:
                    raise ValueError(
                        f"transition matrix is missing the ({a}, {b}) pair"
                    )
        if self.margins is not None and set(self.margins) != set(self.modes):
            raise ValueError(
                "margin block must cover exactly the compiled modes "
                f"(modes {sorted(self.modes)}, margins "
                f"{sorted(self.margins)})"
            )

    # -- queries -------------------------------------------------------------

    @property
    def bitwidths(self) -> List[int]:
        return sorted(self.modes)

    @property
    def max_bits(self) -> int:
        return max(self.modes)

    @property
    def static_mode(self) -> OperatingPoint:
        """The always-sufficient fallback: the maximum-accuracy mode."""
        return self.modes[self.max_bits]

    @property
    def total_area_um2(self) -> float:
        return float(sum(self.domain_areas_um2))

    @property
    def has_margins(self) -> bool:
        return self.margins is not None

    def margin_for(self, bits: int) -> ModeMargin:
        if self.margins is None:
            raise ServeError(
                "table was compiled without margins; re-run "
                "`repro compile-table --margins`"
            )
        return self.margins[bits]

    def mode_key_for(self, required_bits: int) -> int:
        """Key of the cheapest mode with at least *required_bits* bits.

        Mirrors ``AccuracyController.mode_for`` (candidate order and
        tie-break included) so the greedy policy is the paper baseline.
        """
        candidates = [
            (bits, point)
            for bits, point in self.modes.items()
            if bits >= required_bits
        ]
        if not candidates:
            raise ValueError(
                f"no feasible mode provides {required_bits} bits "
                f"(table covers up to {self.max_bits})"
            )
        return min(candidates, key=lambda bp: bp[1].total_power_w)[0]

    def mode_for(self, required_bits: int) -> OperatingPoint:
        return self.modes[self.mode_key_for(required_bits)]

    def transition_between(
        self, from_bits: Optional[int], to_bits: int
    ) -> TransitionCost:
        """Cost from one mode key to another; power-on (None) is free."""
        if from_bits is None or from_bits == to_bits:
            return TransitionCost(0.0, 0.0)
        return self.transitions[(from_bits, to_bits)]

    def describe(self) -> str:
        costly = sum(
            1 for (a, b), c in self.transitions.items() if a != b and not c.is_free
        )
        margins = (
            "margin-guarded" if self.has_margins else "no margins"
        )
        return (
            f"{self.design_name}: {len(self.modes)} modes "
            f"({min(self.modes)}..{self.max_bits} bits), "
            f"{self.num_domains} domains over {self.total_area_um2:.0f} um^2, "
            f"fclk {self.fclk_ghz:.2f} GHz, "
            f"{costly} costed transitions, {margins}"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "schema": MODE_TABLE_SCHEMA,
            "kind": "repro-mode-table",
            "design_name": self.design_name,
            "fclk_ghz": self.fclk_ghz,
            "num_domains": self.num_domains,
            "domain_areas_um2": list(self.domain_areas_um2),
            "fbb_voltage": self.fbb_voltage,
            "generator": {
                "transition_time_ns": self.generator.transition_time_ns,
                "well_cap_ff_per_um2": self.generator.well_cap_ff_per_um2,
                "pump_efficiency": self.generator.pump_efficiency,
                "vdd_transition_time_ns": self.generator.vdd_transition_time_ns,
                "rail_cap_ff_per_um2": self.generator.rail_cap_ff_per_um2,
                "regulator_efficiency": self.generator.regulator_efficiency,
            },
            "modes": {
                str(bits): point.to_dict()
                for bits, point in self.modes.items()
            },
            "transitions": [
                {
                    "from": a,
                    "to": b,
                    "energy_j": cost.energy_j,
                    "settle_ns": cost.settle_ns,
                }
                for (a, b), cost in self.transitions.items()
            ],
            "margins": (
                {
                    str(bits): margin.to_dict()
                    for bits, margin in self.margins.items()
                }
                if self.margins is not None
                else None
            ),
        }

    @staticmethod
    def from_dict(payload: Dict) -> "ModeTable":
        """Parse a serialized table; every defect raises :class:`ServeError`.

        Accepts the current schema and schema 1 (compiled before margins
        existed; loads with ``margins=None``).  A truncated or corrupt
        payload -- missing keys, wrong types, inconsistent matrix --
        surfaces as one clear :class:`ServeError`, never a raw
        ``KeyError``/``TypeError`` from the middle of the parse.
        """
        if not isinstance(payload, dict):
            raise ServeError(
                f"mode-table payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema not in COMPATIBLE_SCHEMAS:
            raise ServeError(
                f"unsupported mode-table schema {schema!r} (this build reads "
                f"schemas {COMPATIBLE_SCHEMAS}); re-run `repro compile-table`"
            )
        try:
            generator = BiasGeneratorModel(**payload["generator"])
            modes = {
                int(bits): OperatingPoint.from_dict(point)
                for bits, point in payload["modes"].items()
            }
            transitions = {
                (int(e["from"]), int(e["to"])): TransitionCost(
                    energy_j=float(e["energy_j"]),
                    settle_ns=float(e["settle_ns"]),
                )
                for e in payload["transitions"]
            }
            raw_margins = payload.get("margins")
            margins = (
                {
                    int(bits): ModeMargin.from_dict(margin)
                    for bits, margin in raw_margins.items()
                }
                if raw_margins is not None
                else None
            )
            return ModeTable(
                design_name=payload["design_name"],
                fclk_ghz=float(payload["fclk_ghz"]),
                num_domains=int(payload["num_domains"]),
                domain_areas_um2=tuple(
                    float(a) for a in payload["domain_areas_um2"]
                ),
                fbb_voltage=float(payload["fbb_voltage"]),
                generator=generator,
                modes=modes,
                transitions=transitions,
                margins=margins,
            )
        except ServeError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServeError(
                f"corrupt or truncated mode-table payload: {exc!r}; "
                "re-run `repro compile-table` to regenerate the artifact"
            ) from exc


def compile_transitions(
    modes: Mapping[int, OperatingPoint],
    domain_areas_um2: Tuple[float, ...],
    generator: BiasGeneratorModel,
    fbb_voltage: float,
) -> Dict[Tuple[int, int], TransitionCost]:
    """Precompute the full pairwise transition-cost matrix."""
    transitions: Dict[Tuple[int, int], TransitionCost] = {}
    for a, point_a in modes.items():
        for b, point_b in modes.items():
            if a == b:
                transitions[(a, b)] = TransitionCost(0.0, 0.0)
                continue
            energy, settle = pairwise_transition_cost(
                point_a, point_b, domain_areas_um2, generator, fbb_voltage
            )
            transitions[(a, b)] = TransitionCost(energy, settle)
    return transitions


def compile_margins(
    design: ImplementedDesign,
    modes: Mapping[int, OperatingPoint],
    samples: int = 48,
    target_yield: float = 0.9987,
    sigma_vth: float = 0.012,
    seed: int = 1234,
) -> Dict[int, ModeMargin]:
    """Monte-Carlo n-sigma slack margins for every compiled mode.

    Each mode is re-timed *at its own exploration corner* (VDD, per-cell
    FBB from its domain assignment, LSBs case-disabled) under sampled
    local Vth variation; the guarded slack is the ``1 - target_yield``
    quantile of the worst-slack distribution.  Each mode gets an
    independent, bits-derived RNG stream so the result is invariant to
    iteration order.
    """
    from repro.sta.caseanalysis import dvas_case
    from repro.sta.variation import MonteCarloTiming

    if samples < 2:
        raise ValueError("need at least two samples per mode")
    graph = design.timing_graph()
    library = design.netlist.library
    domains = design.domains
    margins: Dict[int, ModeMargin] = {}
    for bits, point in modes.items():
        bb = np.asarray(point.bb_config, dtype=bool)
        fbb_cells = bb[domains]
        mc = MonteCarloTiming(
            graph, library, sigma_vth=sigma_vth, seed=seed + bits
        )
        report = mc.analyze_yield(
            design.constraint,
            point.vdd,
            fbb_cells,
            case=dvas_case(design.netlist, bits),
            samples=samples,
        )
        guarded = float(
            np.quantile(report.worst_slack_samples_ps, 1.0 - target_yield)
        )
        margins[bits] = ModeMargin(
            guarded_slack_ps=guarded,
            mean_slack_ps=report.mean_slack_ps,
            sigma_slack_ps=report.sigma_slack_ps,
            timing_yield=report.timing_yield,
            target_yield=target_yield,
            samples=samples,
        )
    return margins


def compile_mode_table(
    design: ImplementedDesign,
    exploration: ExplorationResult,
    generator: BiasGeneratorModel = BiasGeneratorModel(),
    with_margins: bool = False,
    margin_samples: int = 48,
    margin_target_yield: float = 0.9987,
    margin_sigma_vth: float = 0.012,
    margin_seed: int = 1234,
) -> ModeTable:
    """Freeze an exploration + implementation into a serving artifact.

    ``with_margins`` additionally runs :func:`compile_margins` and bakes
    per-mode n-sigma slack margins into the artifact, enabling the
    runtime margin guard.
    """
    if not exploration.best_per_bitwidth:
        raise ValueError("exploration found no feasible operating points")
    modes = dict(exploration.best_per_bitwidth)
    domain_areas = tuple(float(a) for a in measure_domain_areas(design))
    fbb = design.netlist.library.process.fbb_voltage
    margins = (
        compile_margins(
            design,
            modes,
            samples=margin_samples,
            target_yield=margin_target_yield,
            sigma_vth=margin_sigma_vth,
            seed=margin_seed,
        )
        if with_margins
        else None
    )
    return ModeTable(
        design_name=exploration.design_name,
        fclk_ghz=design.fclk_ghz,
        num_domains=design.num_domains,
        domain_areas_um2=domain_areas,
        fbb_voltage=fbb,
        generator=generator,
        modes=modes,
        transitions=compile_transitions(modes, domain_areas, generator, fbb),
        margins=margins,
    )
