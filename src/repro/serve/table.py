"""Compiled, versioned mode-table artifact for the serving subsystem.

Exploration produces an :class:`~repro.core.exploration.ExplorationResult`;
serving wants something leaner and self-contained: the per-bitwidth
operating points, the physical metadata the bias hardware model needs
(per-domain well areas, FBB voltage, clock), and -- precomputed between
every pair of modes -- the transition energy/settling cost, including
VDD-rail re-targeting.  A :class:`ModeTable` freezes all of that into a
JSON-serializable artifact loadable without re-running the flow, so a
server process never imports the implementation stack.

The transition matrix is computed with the *same* routine the offline
:class:`~repro.core.runtime.AccuracyController` costs transitions with
(:func:`repro.core.runtime.pairwise_transition_cost`), which is what makes
the serve scheduler's greedy replay bit-identical to the legacy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import OperatingPoint
from repro.core.exploration import ExplorationResult
from repro.core.flow import ImplementedDesign
from repro.core.runtime import (
    BiasGeneratorModel,
    measure_domain_areas,
    pairwise_transition_cost,
)

#: Schema of the serialized artifact.  Bump on any layout change; loaders
#: reject a mismatch rather than guess.
MODE_TABLE_SCHEMA = 1


@dataclass(frozen=True)
class TransitionCost:
    """Cost of moving the hardware between two compiled modes."""

    energy_j: float
    settle_ns: float

    @property
    def is_free(self) -> bool:
        return self.energy_j == 0.0 and self.settle_ns == 0.0


@dataclass(frozen=True)
class ModeTable:
    """A compiled accuracy-mode table for one operator.

    ``modes`` preserves the exploration's per-bitwidth insertion order so
    power ties in :meth:`mode_key_for` break exactly as the legacy
    controller breaks them.  ``transitions`` covers every ordered pair of
    mode keys (diagonal included, always free).
    """

    design_name: str
    fclk_ghz: float
    num_domains: int
    domain_areas_um2: Tuple[float, ...]
    fbb_voltage: float
    generator: BiasGeneratorModel
    modes: Mapping[int, OperatingPoint]
    transitions: Mapping[Tuple[int, int], TransitionCost] = field(repr=False)

    def __post_init__(self):
        if not self.modes:
            raise ValueError("mode table has no modes")
        for bits, point in self.modes.items():
            if point.active_bits != bits:
                raise ValueError(
                    f"mode key {bits} maps to a {point.active_bits}-bit point"
                )
        for a in self.modes:
            for b in self.modes:
                if (a, b) not in self.transitions:
                    raise ValueError(
                        f"transition matrix is missing the ({a}, {b}) pair"
                    )

    # -- queries -------------------------------------------------------------

    @property
    def bitwidths(self) -> List[int]:
        return sorted(self.modes)

    @property
    def max_bits(self) -> int:
        return max(self.modes)

    @property
    def static_mode(self) -> OperatingPoint:
        """The always-sufficient fallback: the maximum-accuracy mode."""
        return self.modes[self.max_bits]

    @property
    def total_area_um2(self) -> float:
        return float(sum(self.domain_areas_um2))

    def mode_key_for(self, required_bits: int) -> int:
        """Key of the cheapest mode with at least *required_bits* bits.

        Mirrors ``AccuracyController.mode_for`` (candidate order and
        tie-break included) so the greedy policy is the paper baseline.
        """
        candidates = [
            (bits, point)
            for bits, point in self.modes.items()
            if bits >= required_bits
        ]
        if not candidates:
            raise ValueError(
                f"no feasible mode provides {required_bits} bits "
                f"(table covers up to {self.max_bits})"
            )
        return min(candidates, key=lambda bp: bp[1].total_power_w)[0]

    def mode_for(self, required_bits: int) -> OperatingPoint:
        return self.modes[self.mode_key_for(required_bits)]

    def transition_between(
        self, from_bits: Optional[int], to_bits: int
    ) -> TransitionCost:
        """Cost from one mode key to another; power-on (None) is free."""
        if from_bits is None or from_bits == to_bits:
            return TransitionCost(0.0, 0.0)
        return self.transitions[(from_bits, to_bits)]

    def describe(self) -> str:
        costly = sum(
            1 for (a, b), c in self.transitions.items() if a != b and not c.is_free
        )
        return (
            f"{self.design_name}: {len(self.modes)} modes "
            f"({min(self.modes)}..{self.max_bits} bits), "
            f"{self.num_domains} domains over {self.total_area_um2:.0f} um^2, "
            f"fclk {self.fclk_ghz:.2f} GHz, "
            f"{costly} costed transitions"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "schema": MODE_TABLE_SCHEMA,
            "kind": "repro-mode-table",
            "design_name": self.design_name,
            "fclk_ghz": self.fclk_ghz,
            "num_domains": self.num_domains,
            "domain_areas_um2": list(self.domain_areas_um2),
            "fbb_voltage": self.fbb_voltage,
            "generator": {
                "transition_time_ns": self.generator.transition_time_ns,
                "well_cap_ff_per_um2": self.generator.well_cap_ff_per_um2,
                "pump_efficiency": self.generator.pump_efficiency,
                "vdd_transition_time_ns": self.generator.vdd_transition_time_ns,
                "rail_cap_ff_per_um2": self.generator.rail_cap_ff_per_um2,
                "regulator_efficiency": self.generator.regulator_efficiency,
            },
            "modes": {
                str(bits): point.to_dict()
                for bits, point in self.modes.items()
            },
            "transitions": [
                {
                    "from": a,
                    "to": b,
                    "energy_j": cost.energy_j,
                    "settle_ns": cost.settle_ns,
                }
                for (a, b), cost in self.transitions.items()
            ],
        }

    @staticmethod
    def from_dict(payload: Dict) -> "ModeTable":
        schema = payload.get("schema")
        if schema != MODE_TABLE_SCHEMA:
            raise ValueError(
                f"unsupported mode-table schema {schema!r} (this build reads "
                f"schema {MODE_TABLE_SCHEMA}); re-run `repro compile-table`"
            )
        generator = BiasGeneratorModel(**payload["generator"])
        modes = {
            int(bits): OperatingPoint.from_dict(point)
            for bits, point in payload["modes"].items()
        }
        transitions = {
            (int(e["from"]), int(e["to"])): TransitionCost(
                energy_j=float(e["energy_j"]),
                settle_ns=float(e["settle_ns"]),
            )
            for e in payload["transitions"]
        }
        return ModeTable(
            design_name=payload["design_name"],
            fclk_ghz=float(payload["fclk_ghz"]),
            num_domains=int(payload["num_domains"]),
            domain_areas_um2=tuple(
                float(a) for a in payload["domain_areas_um2"]
            ),
            fbb_voltage=float(payload["fbb_voltage"]),
            generator=generator,
            modes=modes,
            transitions=transitions,
        )


def compile_transitions(
    modes: Mapping[int, OperatingPoint],
    domain_areas_um2: Tuple[float, ...],
    generator: BiasGeneratorModel,
    fbb_voltage: float,
) -> Dict[Tuple[int, int], TransitionCost]:
    """Precompute the full pairwise transition-cost matrix."""
    transitions: Dict[Tuple[int, int], TransitionCost] = {}
    for a, point_a in modes.items():
        for b, point_b in modes.items():
            if a == b:
                transitions[(a, b)] = TransitionCost(0.0, 0.0)
                continue
            energy, settle = pairwise_transition_cost(
                point_a, point_b, domain_areas_um2, generator, fbb_voltage
            )
            transitions[(a, b)] = TransitionCost(energy, settle)
    return transitions


def compile_mode_table(
    design: ImplementedDesign,
    exploration: ExplorationResult,
    generator: BiasGeneratorModel = BiasGeneratorModel(),
) -> ModeTable:
    """Freeze an exploration + implementation into a serving artifact."""
    if not exploration.best_per_bitwidth:
        raise ValueError("exploration found no feasible operating points")
    modes = dict(exploration.best_per_bitwidth)
    domain_areas = tuple(float(a) for a in measure_domain_areas(design))
    fbb = design.netlist.library.process.fbb_voltage
    return ModeTable(
        design_name=exploration.design_name,
        fclk_ghz=design.fclk_ghz,
        num_domains=design.num_domains,
        domain_areas_um2=domain_areas,
        fbb_voltage=fbb,
        generator=generator,
        modes=modes,
        transitions=compile_transitions(modes, domain_areas, generator, fbb),
    )
