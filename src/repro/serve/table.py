"""Compiled, versioned mode-table artifact for the serving subsystem.

Exploration produces an :class:`~repro.core.exploration.ExplorationResult`;
serving wants something leaner and self-contained: the per-bitwidth
operating points, the physical metadata the bias hardware model needs
(per-domain well areas, FBB voltage, clock), and -- precomputed between
every pair of modes -- the transition energy/settling cost, including
VDD-rail re-targeting.  A :class:`ModeTable` freezes all of that into a
JSON-serializable artifact loadable without re-running the flow, so a
server process never imports the implementation stack.

The transition matrix is computed with the *same* routine the offline
:class:`~repro.core.runtime.AccuracyController` costs transitions with
(:func:`repro.core.runtime.pairwise_transition_cost`), which is what makes
the serve scheduler's greedy replay bit-identical to the legacy accounting.

Since schema 2 a table may also carry per-mode **slack margins**
(:class:`ModeMargin`) computed offline by Monte-Carlo timing
(:func:`compile_margins` over
:class:`repro.sta.variation.MonteCarloTiming`): the n-sigma worst-case
slack of each mode at its exploration corner.  The serve-side margin
guard (:mod:`repro.serve.guard`) compares them against runtime margin
erosion and falls back to a safer mode before timing is violated.
Schema-1 tables (no margins) still load and serve; the guard simply has
nothing to check and disables itself with a warning.

Since schema 3 a table may additionally embed a **frozen learned
mode-selection policy** (:class:`LearnedPolicySpec`): the bucketized
decision tensor a fitted-Q trainer (:mod:`repro.serve.learned`) produced
offline from a workload-trace suite.  The spec is pure data -- bucket
edges, EWMA constants and mode-key decisions -- so loading it never
imports the training stack, and its accuracy-invariant safety is
re-validated structurally on every load.
"""

from __future__ import annotations

import json

import numpy as np

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.config import OperatingPoint
from repro.core.exploration import ExplorationResult
from repro.core.flow import ImplementedDesign
from repro.core.runtime import (
    BiasGeneratorModel,
    measure_domain_areas,
    pairwise_transition_cost,
)
from repro.serve.errors import ServeError

#: Schema of the serialized artifact.  Bump on any layout change; loaders
#: reject a mismatch rather than guess.  Schema 2 added the optional
#: per-mode margin block; schema 3 the optional frozen learned-policy
#: block.  Older artifacts are still readable (they simply carry
#: neither).
MODE_TABLE_SCHEMA = 3

#: Schemas :meth:`ModeTable.from_dict` accepts.
COMPATIBLE_SCHEMAS = (1, 2, MODE_TABLE_SCHEMA)

#: Artifact-parse instrumentation.  ``json`` counts full-table dict
#: parses (:meth:`ModeTable.from_dict`), ``shared`` counts zero-copy
#: shared-memory attaches (:meth:`SharedModeTable.attach`).  The fleet
#: differential suite reads these per worker process to prove that
#: workers map the one exported segment instead of re-parsing JSON.
PARSE_COUNTERS: Dict[str, int] = {"json": 0, "shared": 0}


def parse_counters() -> Dict[str, int]:
    """Snapshot of this process's table-parse instrumentation."""
    return dict(PARSE_COUNTERS)


@dataclass(frozen=True)
class ModeMargin:
    """Sign-off slack margin of one compiled mode under Vth variation.

    ``guarded_slack_ps`` is the (1 - target_yield) quantile of the
    Monte-Carlo worst-slack distribution: the slack the n-sigma-worst
    fabricated instance still has.  The margin guard serves a mode only
    while runtime erosion has not consumed that slack.
    """

    guarded_slack_ps: float
    mean_slack_ps: float
    sigma_slack_ps: float
    timing_yield: float
    target_yield: float
    samples: int

    def __post_init__(self):
        if not 0.0 < self.target_yield < 1.0:
            raise ValueError("target_yield must be in (0, 1)")
        if not 0.0 <= self.timing_yield <= 1.0:
            raise ValueError("timing_yield must be in [0, 1]")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "guarded_slack_ps": self.guarded_slack_ps,
            "mean_slack_ps": self.mean_slack_ps,
            "sigma_slack_ps": self.sigma_slack_ps,
            "timing_yield": self.timing_yield,
            "target_yield": self.target_yield,
            "samples": self.samples,
        }

    @staticmethod
    def from_dict(data: Dict) -> "ModeMargin":
        return ModeMargin(
            guarded_slack_ps=float(data["guarded_slack_ps"]),
            mean_slack_ps=float(data["mean_slack_ps"]),
            sigma_slack_ps=float(data["sigma_slack_ps"]),
            timing_yield=float(data["timing_yield"]),
            target_yield=float(data["target_yield"]),
            samples=int(data["samples"]),
        )


@dataclass(frozen=True)
class LearnedPolicySpec:
    """A frozen fitted-Q mode-selection policy, embedded in the artifact.

    The policy is a pure lookup: the serving context's current mode and
    its demand-level, demand-volatility and pool-occupancy features
    (bucketized against the recorded edges) index
    ``decisions[mode][level][vol][occ][bits]``, which names the mode key
    to serve.  ``mode_states`` records the mode keys the leading axis is
    indexed by -- the table's compiled mode order, re-checked on load --
    and the final extra row stands for the power-on state (no current
    mode).  The EWMA smoothing constants the features
    were *trained* with travel in the spec; the serve-side policy
    refuses to run if they differ from the constants the scheduler folds
    with, so trained and served features can never drift apart.

    ``decisions`` is indexed by the raw requested bits (0..max_bits); the
    trainer guarantees -- and :meth:`validate_for` re-checks on load --
    that every entry names a compiled mode offering at least the indexed
    bits, which is what makes the accuracy invariant hold by
    construction for the frozen policy.
    """

    level_edges: Tuple[float, ...]
    volatility_edges: Tuple[float, ...]
    occupancy_edges: Tuple[float, ...]
    mode_states: Tuple[int, ...]
    demand_alpha: float
    volatility_alpha: float
    max_bits: int
    decisions: Tuple[
        Tuple[Tuple[Tuple[Tuple[int, ...], ...], ...], ...], ...
    ]
    training: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self):
        for label, edges in (
            ("level_edges", self.level_edges),
            ("volatility_edges", self.volatility_edges),
            ("occupancy_edges", self.occupancy_edges),
        ):
            if list(edges) != sorted(edges):
                raise ValueError(f"{label} must be ascending, got {edges}")
        if self.max_bits <= 0:
            raise ValueError("max_bits must be positive")
        if not self.mode_states:
            raise ValueError("mode_states must name at least one mode")
        shape = (
            len(self.mode_states) + 1,
            len(self.level_edges) + 1,
            len(self.volatility_edges) + 1,
            len(self.occupancy_edges) + 1,
            self.max_bits + 1,
        )
        if len(self.decisions) != shape[0] or any(
            len(cube) != shape[1]
            or any(
                len(plane) != shape[2]
                or any(
                    len(row) != shape[3]
                    or any(len(cell) != shape[4] for cell in row)
                    for row in plane
                )
                for plane in cube
            )
            for cube in self.decisions
        ):
            raise ValueError(
                f"decisions tensor must have shape {shape} "
                "(mode states + power-on row, one bucket more than each "
                "edge list, bits 0..max_bits)"
            )

    @property
    def num_states(self) -> int:
        return (
            (len(self.mode_states) + 1)
            * (len(self.level_edges) + 1)
            * (len(self.volatility_edges) + 1)
            * (len(self.occupancy_edges) + 1)
            * (self.max_bits + 1)
        )

    def validate_for(self, modes: Mapping[int, "OperatingPoint"]) -> None:
        """Check mode-state alignment and that every decision covers."""
        if tuple(modes) != self.mode_states:
            raise ValueError(
                f"learned policy was trained over mode states "
                f"{self.mode_states} but the table compiles "
                f"{tuple(modes)}; retrain the policy"
            )
        for cube in self.decisions:
            for plane in cube:
                for row in plane:
                    for cell in row:
                        for bits, key in enumerate(cell):
                            point = modes.get(key)
                            if point is None:
                                raise ValueError(
                                    f"learned policy decides unknown "
                                    f"mode {key} for {bits} bits"
                                )
                            if point.active_bits < bits:
                                raise ValueError(
                                    f"learned policy violates the "
                                    f"accuracy invariant: mode {key} "
                                    f"({point.active_bits} bits) decided "
                                    f"for {bits}-bit requests"
                                )

    def to_dict(self) -> Dict:
        return {
            "level_edges": list(self.level_edges),
            "volatility_edges": list(self.volatility_edges),
            "occupancy_edges": list(self.occupancy_edges),
            "mode_states": list(self.mode_states),
            "demand_alpha": self.demand_alpha,
            "volatility_alpha": self.volatility_alpha,
            "max_bits": self.max_bits,
            "decisions": [
                [
                    [[list(cell) for cell in row] for row in plane]
                    for plane in cube
                ]
                for cube in self.decisions
            ],
            "training": dict(self.training),
        }

    @staticmethod
    def from_dict(data: Dict) -> "LearnedPolicySpec":
        return LearnedPolicySpec(
            level_edges=tuple(float(e) for e in data["level_edges"]),
            volatility_edges=tuple(
                float(e) for e in data["volatility_edges"]
            ),
            occupancy_edges=tuple(
                float(e) for e in data["occupancy_edges"]
            ),
            mode_states=tuple(int(k) for k in data["mode_states"]),
            demand_alpha=float(data["demand_alpha"]),
            volatility_alpha=float(data["volatility_alpha"]),
            max_bits=int(data["max_bits"]),
            decisions=tuple(
                tuple(
                    tuple(
                        tuple(tuple(int(k) for k in cell) for cell in row)
                        for row in plane
                    )
                    for plane in cube
                )
                for cube in data["decisions"]
            ),
            training=dict(data.get("training", {})),
        )


@dataclass(frozen=True)
class TransitionCost:
    """Cost of moving the hardware between two compiled modes."""

    energy_j: float
    settle_ns: float

    @property
    def is_free(self) -> bool:
        return self.energy_j == 0.0 and self.settle_ns == 0.0


@dataclass(frozen=True)
class ModeTable:
    """A compiled accuracy-mode table for one operator.

    ``modes`` preserves the exploration's per-bitwidth insertion order so
    power ties in :meth:`mode_key_for` break exactly as the legacy
    controller breaks them.  ``transitions`` covers every ordered pair of
    mode keys (diagonal included, always free).
    """

    design_name: str
    fclk_ghz: float
    num_domains: int
    domain_areas_um2: Tuple[float, ...]
    fbb_voltage: float
    generator: BiasGeneratorModel
    modes: Mapping[int, OperatingPoint]
    transitions: Mapping[Tuple[int, int], TransitionCost] = field(repr=False)
    #: Optional per-mode n-sigma slack margins (schema 2).  ``None`` means
    #: "compiled without margins": the table serves, the guard disables.
    margins: Optional[Mapping[int, ModeMargin]] = None
    #: Optional frozen learned mode-selection policy (schema 3).
    #: ``None`` means "no policy trained": ``--policy learned`` refuses.
    learned: Optional[LearnedPolicySpec] = None

    def __post_init__(self):
        if not self.modes:
            raise ValueError("mode table has no modes")
        for bits, point in self.modes.items():
            if point.active_bits != bits:
                raise ValueError(
                    f"mode key {bits} maps to a {point.active_bits}-bit point"
                )
        for a in self.modes:
            for b in self.modes:
                if (a, b) not in self.transitions:
                    raise ValueError(
                        f"transition matrix is missing the ({a}, {b}) pair"
                    )
        if self.margins is not None and set(self.margins) != set(self.modes):
            raise ValueError(
                "margin block must cover exactly the compiled modes "
                f"(modes {sorted(self.modes)}, margins "
                f"{sorted(self.margins)})"
            )
        if self.learned is not None:
            if self.learned.max_bits != max(self.modes):
                raise ValueError(
                    f"learned policy covers bits up to "
                    f"{self.learned.max_bits} but the table serves up to "
                    f"{max(self.modes)}"
                )
            self.learned.validate_for(self.modes)

    # -- queries -------------------------------------------------------------

    @property
    def bitwidths(self) -> List[int]:
        return sorted(self.modes)

    @property
    def max_bits(self) -> int:
        return max(self.modes)

    @property
    def static_mode(self) -> OperatingPoint:
        """The always-sufficient fallback: the maximum-accuracy mode."""
        return self.modes[self.max_bits]

    @property
    def total_area_um2(self) -> float:
        return float(sum(self.domain_areas_um2))

    @property
    def has_margins(self) -> bool:
        return self.margins is not None

    @property
    def has_learned_policy(self) -> bool:
        return self.learned is not None

    def with_learned(self, spec: Optional[LearnedPolicySpec]) -> "ModeTable":
        """A copy of this table with the learned-policy block replaced."""
        import dataclasses

        return dataclasses.replace(self, learned=spec)

    def margin_for(self, bits: int) -> ModeMargin:
        if self.margins is None:
            raise ServeError(
                "table was compiled without margins; re-run "
                "`repro compile-table --margins`"
            )
        return self.margins[bits]

    def mode_key_for(self, required_bits: int) -> int:
        """Key of the cheapest mode with at least *required_bits* bits.

        Mirrors ``AccuracyController.mode_for`` (candidate order and
        tie-break included) so the greedy policy is the paper baseline.
        """
        candidates = [
            (bits, point)
            for bits, point in self.modes.items()
            if bits >= required_bits
        ]
        if not candidates:
            raise ValueError(
                f"no feasible mode provides {required_bits} bits "
                f"(table covers up to {self.max_bits})"
            )
        return min(candidates, key=lambda bp: bp[1].total_power_w)[0]

    def mode_for(self, required_bits: int) -> OperatingPoint:
        return self.modes[self.mode_key_for(required_bits)]

    def transition_between(
        self, from_bits: Optional[int], to_bits: int
    ) -> TransitionCost:
        """Cost from one mode key to another; power-on (None) is free."""
        if from_bits is None or from_bits == to_bits:
            return TransitionCost(0.0, 0.0)
        return self.transitions[(from_bits, to_bits)]

    def describe(self) -> str:
        costly = sum(
            1 for (a, b), c in self.transitions.items() if a != b and not c.is_free
        )
        margins = (
            "margin-guarded" if self.has_margins else "no margins"
        )
        learned = (
            f", learned policy ({self.learned.num_states} states)"
            if self.has_learned_policy
            else ""
        )
        return (
            f"{self.design_name}: {len(self.modes)} modes "
            f"({min(self.modes)}..{self.max_bits} bits), "
            f"{self.num_domains} domains over {self.total_area_um2:.0f} um^2, "
            f"fclk {self.fclk_ghz:.2f} GHz, "
            f"{costly} costed transitions, {margins}{learned}"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "schema": MODE_TABLE_SCHEMA,
            "kind": "repro-mode-table",
            "design_name": self.design_name,
            "fclk_ghz": self.fclk_ghz,
            "num_domains": self.num_domains,
            "domain_areas_um2": list(self.domain_areas_um2),
            "fbb_voltage": self.fbb_voltage,
            "generator": {
                "transition_time_ns": self.generator.transition_time_ns,
                "well_cap_ff_per_um2": self.generator.well_cap_ff_per_um2,
                "pump_efficiency": self.generator.pump_efficiency,
                "vdd_transition_time_ns": self.generator.vdd_transition_time_ns,
                "rail_cap_ff_per_um2": self.generator.rail_cap_ff_per_um2,
                "regulator_efficiency": self.generator.regulator_efficiency,
            },
            "modes": {
                str(bits): point.to_dict()
                for bits, point in self.modes.items()
            },
            "transitions": [
                {
                    "from": a,
                    "to": b,
                    "energy_j": cost.energy_j,
                    "settle_ns": cost.settle_ns,
                }
                for (a, b), cost in self.transitions.items()
            ],
            "margins": (
                {
                    str(bits): margin.to_dict()
                    for bits, margin in self.margins.items()
                }
                if self.margins is not None
                else None
            ),
            "learned": (
                self.learned.to_dict() if self.learned is not None else None
            ),
        }

    @staticmethod
    def from_dict(payload: Dict) -> "ModeTable":
        """Parse a serialized table; every defect raises :class:`ServeError`.

        Accepts the current schema and schema 1 (compiled before margins
        existed; loads with ``margins=None``).  A truncated or corrupt
        payload -- missing keys, wrong types, inconsistent matrix --
        surfaces as one clear :class:`ServeError`, never a raw
        ``KeyError``/``TypeError`` from the middle of the parse.
        """
        PARSE_COUNTERS["json"] += 1
        if not isinstance(payload, dict):
            raise ServeError(
                f"mode-table payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema not in COMPATIBLE_SCHEMAS:
            raise ServeError(
                f"unsupported mode-table schema {schema!r} (this build reads "
                f"schemas {COMPATIBLE_SCHEMAS}); re-run `repro compile-table`"
            )
        try:
            generator = BiasGeneratorModel(**payload["generator"])
            modes = {
                int(bits): OperatingPoint.from_dict(point)
                for bits, point in payload["modes"].items()
            }
            transitions = {
                (int(e["from"]), int(e["to"])): TransitionCost(
                    energy_j=float(e["energy_j"]),
                    settle_ns=float(e["settle_ns"]),
                )
                for e in payload["transitions"]
            }
            raw_margins = payload.get("margins")
            margins = (
                {
                    int(bits): ModeMargin.from_dict(margin)
                    for bits, margin in raw_margins.items()
                }
                if raw_margins is not None
                else None
            )
            raw_learned = payload.get("learned")
            learned = (
                LearnedPolicySpec.from_dict(raw_learned)
                if raw_learned is not None
                else None
            )
            return ModeTable(
                design_name=payload["design_name"],
                fclk_ghz=float(payload["fclk_ghz"]),
                num_domains=int(payload["num_domains"]),
                domain_areas_um2=tuple(
                    float(a) for a in payload["domain_areas_um2"]
                ),
                fbb_voltage=float(payload["fbb_voltage"]),
                generator=generator,
                modes=modes,
                transitions=transitions,
                margins=margins,
                learned=learned,
            )
        except ServeError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServeError(
                f"corrupt or truncated mode-table payload: {exc!r}; "
                "re-run `repro compile-table` to regenerate the artifact"
            ) from exc

    # -- shared memory -------------------------------------------------------

    def to_shared(self, name: Optional[str] = None) -> "SharedModeTable":
        """Export this table into a shared-memory segment, once.

        The dense transition/margin matrices (and everything else the
        runtime needs) are laid out as fixed-offset binary blocks in one
        ``multiprocessing.shared_memory`` segment; fleet workers attach
        with :meth:`from_shared` and map them zero-copy instead of
        re-parsing the JSON artifact per process.  The returned
        :class:`SharedModeTable` owns the segment: ``close()`` it when
        this process is done and ``unlink()`` it at fleet shutdown.
        """
        return SharedModeTable.create(self, name=name)

    @staticmethod
    def from_shared(name: str) -> "SharedModeTable":
        """Attach the segment exported by :meth:`to_shared` (zero JSON).

        Round-trips bit-identically: every float travels as its binary
        ``float64`` self, so ``from_shared(h.name).table == table``.
        """
        return SharedModeTable.attach(name)


def compile_transitions(
    modes: Mapping[int, OperatingPoint],
    domain_areas_um2: Tuple[float, ...],
    generator: BiasGeneratorModel,
    fbb_voltage: float,
) -> Dict[Tuple[int, int], TransitionCost]:
    """Precompute the full pairwise transition-cost matrix."""
    transitions: Dict[Tuple[int, int], TransitionCost] = {}
    for a, point_a in modes.items():
        for b, point_b in modes.items():
            if a == b:
                transitions[(a, b)] = TransitionCost(0.0, 0.0)
                continue
            energy, settle = pairwise_transition_cost(
                point_a, point_b, domain_areas_um2, generator, fbb_voltage
            )
            transitions[(a, b)] = TransitionCost(energy, settle)
    return transitions


def compile_margins(
    design: ImplementedDesign,
    modes: Mapping[int, OperatingPoint],
    samples: int = 48,
    target_yield: float = 0.9987,
    sigma_vth: float = 0.012,
    seed: int = 1234,
) -> Dict[int, ModeMargin]:
    """Monte-Carlo n-sigma slack margins for every compiled mode.

    Each mode is re-timed *at its own exploration corner* (VDD, per-cell
    FBB from its domain assignment, LSBs case-disabled) under sampled
    local Vth variation; the guarded slack is the ``1 - target_yield``
    quantile of the worst-slack distribution.  Each mode gets an
    independent, bits-derived RNG stream so the result is invariant to
    iteration order.
    """
    from repro.sta.caseanalysis import dvas_case
    from repro.sta.variation import MonteCarloTiming

    if samples < 2:
        raise ValueError("need at least two samples per mode")
    graph = design.timing_graph()
    library = design.netlist.library
    domains = design.domains
    margins: Dict[int, ModeMargin] = {}
    for bits, point in modes.items():
        bb = np.asarray(point.bb_config, dtype=bool)
        fbb_cells = bb[domains]
        mc = MonteCarloTiming(
            graph, library, sigma_vth=sigma_vth, seed=seed + bits
        )
        report = mc.analyze_yield(
            design.constraint,
            point.vdd,
            fbb_cells,
            case=dvas_case(design.netlist, bits),
            samples=samples,
        )
        guarded = float(
            np.quantile(report.worst_slack_samples_ps, 1.0 - target_yield)
        )
        margins[bits] = ModeMargin(
            guarded_slack_ps=guarded,
            mean_slack_ps=report.mean_slack_ps,
            sigma_slack_ps=report.sigma_slack_ps,
            timing_yield=report.timing_yield,
            target_yield=target_yield,
            samples=samples,
        )
    return margins


def compile_mode_table(
    design: ImplementedDesign,
    exploration: ExplorationResult,
    generator: BiasGeneratorModel = BiasGeneratorModel(),
    with_margins: bool = False,
    margin_samples: int = 48,
    margin_target_yield: float = 0.9987,
    margin_sigma_vth: float = 0.012,
    margin_seed: int = 1234,
) -> ModeTable:
    """Freeze an exploration + implementation into a serving artifact.

    ``with_margins`` additionally runs :func:`compile_margins` and bakes
    per-mode n-sigma slack margins into the artifact, enabling the
    runtime margin guard.
    """
    if not exploration.best_per_bitwidth:
        raise ValueError("exploration found no feasible operating points")
    modes = dict(exploration.best_per_bitwidth)
    domain_areas = tuple(float(a) for a in measure_domain_areas(design))
    fbb = design.netlist.library.process.fbb_voltage
    margins = (
        compile_margins(
            design,
            modes,
            samples=margin_samples,
            target_yield=margin_target_yield,
            sigma_vth=margin_sigma_vth,
            seed=margin_seed,
        )
        if with_margins
        else None
    )
    return ModeTable(
        design_name=exploration.design_name,
        fclk_ghz=design.fclk_ghz,
        num_domains=design.num_domains,
        domain_areas_um2=domain_areas,
        fbb_voltage=fbb,
        generator=generator,
        modes=modes,
        transitions=compile_transitions(modes, domain_areas, generator, fbb),
        margins=margins,
    )


# -- shared-memory export ----------------------------------------------------

#: First 8 bytes of every shared-memory table segment.
SHARED_TABLE_MAGIC = b"RPROSHM\x00"


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class _SharedLayout:
    """Byte offsets of every block in a shared-memory table segment.

    Fixed header (magic, schema, attach refcount, dimensions, scalars,
    design name) followed by 8-byte-aligned dense blocks: mode keys,
    per-mode operating-point fields, the per-mode/per-domain FBB matrix,
    domain areas, the two transition matrices, (margined tables) the
    per-mode margin matrix and (schema-3 tables with a trained policy)
    the learned-policy spec as a UTF-8 JSON block.  Everything numeric
    is little-endian ``int64``/``float64``, so attached views are
    bit-identical to the exported arrays.
    """

    N_DIMS = 7
    N_SCALARS = 8
    MODE_FIELDS = 5  # vdd, total/dynamic/leakage power, worst slack
    MARGIN_FIELDS = 6  # guarded/mean/sigma slack, 2 yields, samples

    def __init__(
        self,
        n_modes: int,
        num_domains: int,
        n_areas: int,
        bb_width: int,
        has_margins: bool,
        name_len: int,
        learned_len: int = 0,
    ):
        self.n_modes = n_modes
        self.num_domains = num_domains
        self.n_areas = n_areas
        self.bb_width = bb_width
        self.has_margins = has_margins
        self.name_len = name_len
        self.learned_len = learned_len
        self.magic = 0
        self.schema = 8
        self.refcount = 16
        self.dims = 24
        self.scalars = self.dims + 8 * self.N_DIMS
        self.name = self.scalars + 8 * self.N_SCALARS
        offset = _align8(self.name + name_len)
        self.mode_keys = offset
        offset += 8 * n_modes
        self.mode_fields = offset
        offset += 8 * n_modes * self.MODE_FIELDS
        self.bb_matrix = offset
        offset = _align8(offset + n_modes * bb_width)
        self.areas = offset
        offset += 8 * n_areas
        self.trans_energy = offset
        offset += 8 * n_modes * n_modes
        self.trans_settle = offset
        offset += 8 * n_modes * n_modes
        self.margins = offset
        if has_margins:
            offset += 8 * n_modes * self.MARGIN_FIELDS
        self.learned = offset
        offset += learned_len
        # Whole-buffer int64 views require 8-byte total size; the
        # learned JSON block is the only variable-byte-length tail.
        self.size = _align8(offset)


class SharedModeTable:
    """A :class:`ModeTable` living in a shared-memory segment.

    One process (the fleet router) calls :meth:`create` /
    :meth:`ModeTable.to_shared` once; every worker calls :meth:`attach` /
    :meth:`ModeTable.from_shared` with the segment ``name`` and maps the
    same physical pages -- no JSON artifact parse, no per-process copy of
    the dense matrices.  ``table`` materializes a regular
    :class:`ModeTable` from the mapped blocks (bit-identical floats);
    ``transition_energy_matrix`` & co. expose the raw zero-copy views for
    consumers that want the arrays themselves.

    Lifecycle: every attach bumps the in-segment refcount
    (diagnostic, not a lock), ``close()`` drops this process's mapping,
    and ``unlink()`` -- owner-side, at fleet shutdown -- removes the
    segment from the OS.  Attach-side resource-tracker registrations are
    released so a worker exiting (or crashing) never tears down a
    segment its peers still map; if the *owner* crashes, its resource
    tracker removes the segment at process-family shutdown, so crash
    injection cannot leak segments either.
    """

    def __init__(self, shm, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._table: Optional[ModeTable] = None
        self._layout = self._read_layout()

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls, table: ModeTable, name: Optional[str] = None
    ) -> "SharedModeTable":
        from multiprocessing import shared_memory

        mode_keys = list(table.modes)
        bb_widths = {len(p.bb_config) for p in table.modes.values()}
        if len(bb_widths) != 1:
            raise ServeError(
                "cannot export a table with inconsistent bb_config "
                f"widths {sorted(bb_widths)}"
            )
        bb_width = bb_widths.pop()
        encoded_name = table.design_name.encode("utf-8")
        encoded_learned = (
            json.dumps(table.learned.to_dict(), sort_keys=True).encode(
                "utf-8"
            )
            if table.learned is not None
            else b""
        )
        layout = _SharedLayout(
            n_modes=len(mode_keys),
            num_domains=table.num_domains,
            n_areas=len(table.domain_areas_um2),
            bb_width=bb_width,
            has_margins=table.has_margins,
            name_len=len(encoded_name),
            learned_len=len(encoded_learned),
        )
        shm = shared_memory.SharedMemory(
            create=True, size=layout.size, name=name
        )
        buf = shm.buf
        buf[0:8] = SHARED_TABLE_MAGIC
        ints = np.frombuffer(buf, dtype="<i8")

        def put_ints(offset, values):
            start = offset // 8
            ints[start : start + len(values)] = values

        def put_floats(offset, values):
            np.frombuffer(buf, dtype="<f8", count=len(values), offset=offset)[
                :
            ] = values

        put_ints(layout.schema, [MODE_TABLE_SCHEMA])
        put_ints(layout.refcount, [1])
        put_ints(
            layout.dims,
            [
                layout.n_modes,
                layout.num_domains,
                layout.n_areas,
                layout.bb_width,
                int(layout.has_margins),
                layout.name_len,
                layout.learned_len,
            ],
        )
        generator = table.generator
        put_floats(
            layout.scalars,
            [
                table.fclk_ghz,
                table.fbb_voltage,
                generator.transition_time_ns,
                generator.well_cap_ff_per_um2,
                generator.pump_efficiency,
                generator.vdd_transition_time_ns,
                generator.rail_cap_ff_per_um2,
                generator.regulator_efficiency,
            ],
        )
        buf[layout.name : layout.name + layout.name_len] = encoded_name
        put_ints(layout.mode_keys, mode_keys)
        fields = np.frombuffer(
            buf,
            dtype="<f8",
            count=layout.n_modes * layout.MODE_FIELDS,
            offset=layout.mode_fields,
        ).reshape(layout.n_modes, layout.MODE_FIELDS)
        bb = np.frombuffer(
            buf,
            dtype=np.uint8,
            count=layout.n_modes * layout.bb_width,
            offset=layout.bb_matrix,
        ).reshape(layout.n_modes, layout.bb_width)
        for row, bits in enumerate(mode_keys):
            point = table.modes[bits]
            fields[row] = [
                point.vdd,
                point.total_power_w,
                point.dynamic_power_w,
                point.leakage_power_w,
                point.worst_slack_ps,
            ]
            bb[row] = [1 if flag else 0 for flag in point.bb_config]
        put_floats(layout.areas, list(table.domain_areas_um2))
        energy = np.frombuffer(
            buf,
            dtype="<f8",
            count=layout.n_modes**2,
            offset=layout.trans_energy,
        ).reshape(layout.n_modes, layout.n_modes)
        settle = np.frombuffer(
            buf,
            dtype="<f8",
            count=layout.n_modes**2,
            offset=layout.trans_settle,
        ).reshape(layout.n_modes, layout.n_modes)
        for i, a in enumerate(mode_keys):
            for j, b in enumerate(mode_keys):
                cost = table.transitions[(a, b)]
                energy[i, j] = cost.energy_j
                settle[i, j] = cost.settle_ns
        if table.has_margins:
            margins = np.frombuffer(
                buf,
                dtype="<f8",
                count=layout.n_modes * layout.MARGIN_FIELDS,
                offset=layout.margins,
            ).reshape(layout.n_modes, layout.MARGIN_FIELDS)
            for row, bits in enumerate(mode_keys):
                margin = table.margins[bits]
                margins[row] = [
                    margin.guarded_slack_ps,
                    margin.mean_slack_ps,
                    margin.sigma_slack_ps,
                    margin.timing_yield,
                    margin.target_yield,
                    float(margin.samples),
                ]
        if encoded_learned:
            buf[layout.learned : layout.learned + layout.learned_len] = (
                encoded_learned
            )
        del ints, fields, bb, energy, settle  # release exported views
        handle = cls(shm, owner=True)
        handle._table = table
        return handle

    @classmethod
    def attach(cls, name: str) -> "SharedModeTable":
        from multiprocessing import resource_tracker, shared_memory

        # Python < 3.13 registers attach-only mappings with the resource
        # tracker exactly like created ones, so an attaching process
        # exiting would unlink the segment out from under its peers (or,
        # in a forked fleet, unbalance the creator's registration).
        # Only the creator owns the registration: suppress it for the
        # duration of the attach.
        original_register = resource_tracker.register

        def attach_register(name_, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                original_register(name_, rtype)

        resource_tracker.register = attach_register
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise ServeError(
                f"no shared mode-table segment named {name!r}; the "
                "exporting process is gone or already unlinked it"
            ) from None
        finally:
            resource_tracker.register = original_register
        if bytes(shm.buf[0:8]) != SHARED_TABLE_MAGIC:
            shm.close()
            raise ServeError(
                f"segment {name!r} is not a shared mode table "
                "(bad magic)"
            )
        schema = int(np.frombuffer(shm.buf, "<i8", count=1, offset=8)[0])
        # The binary layout is exactly the current schema's: segments are
        # created and attached within one process family, never archived,
        # so unlike the JSON artifact there is no back-compat window.
        if schema != MODE_TABLE_SCHEMA:
            shm.close()
            raise ServeError(
                f"unsupported shared mode-table schema {schema!r} (this "
                f"build maps schema {MODE_TABLE_SCHEMA} segments)"
            )
        handle = cls(shm, owner=False)
        handle._bump_refcount(+1)
        PARSE_COUNTERS["shared"] += 1
        return handle

    # -- segment bookkeeping -------------------------------------------------

    def _read_layout(self) -> _SharedLayout:
        dims = np.frombuffer(
            self._shm.buf, "<i8", count=_SharedLayout.N_DIMS, offset=24
        )
        return _SharedLayout(
            n_modes=int(dims[0]),
            num_domains=int(dims[1]),
            n_areas=int(dims[2]),
            bb_width=int(dims[3]),
            has_margins=bool(dims[4]),
            name_len=int(dims[5]),
            learned_len=int(dims[6]),
        )

    def _bump_refcount(self, delta: int) -> int:
        view = np.frombuffer(
            self._shm.buf, "<i8", count=1, offset=self._layout.refcount
        )
        # Diagnostic count, not a lock: attach/close are serialized by
        # the router's lifecycle, not by concurrent writers.
        value = int(view[0]) + delta
        view[0] = value
        del view
        return value

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size_bytes(self) -> int:
        return self._layout.size

    @property
    def attach_count(self) -> int:
        """Current in-segment refcount (creator counts as 1)."""
        return int(
            np.frombuffer(
                self._shm.buf, "<i8", count=1, offset=self._layout.refcount
            )[0]
        )

    def close(self) -> None:
        """Drop this process's mapping (decrements the refcount once)."""
        if self._closed:
            return
        self._bump_refcount(-1)
        self._closed = True
        self._table = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the OS (owner-side, at shutdown)."""
        if not self._closed:
            self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedModeTable":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    # -- zero-copy views -----------------------------------------------------

    def _float_view(self, offset: int, count: int) -> np.ndarray:
        if self._closed:
            raise ServeError("shared mode table is closed")
        return np.frombuffer(
            self._shm.buf, dtype="<f8", count=count, offset=offset
        )

    @property
    def mode_keys(self) -> np.ndarray:
        layout = self._layout
        return np.frombuffer(
            self._shm.buf,
            "<i8",
            count=layout.n_modes,
            offset=layout.mode_keys,
        )

    @property
    def transition_energy_matrix(self) -> np.ndarray:
        """Dense (n_modes, n_modes) energy matrix mapped zero-copy."""
        layout = self._layout
        return self._float_view(
            layout.trans_energy, layout.n_modes**2
        ).reshape(layout.n_modes, layout.n_modes)

    @property
    def transition_settle_matrix(self) -> np.ndarray:
        """Dense (n_modes, n_modes) settle matrix mapped zero-copy."""
        layout = self._layout
        return self._float_view(
            layout.trans_settle, layout.n_modes**2
        ).reshape(layout.n_modes, layout.n_modes)

    @property
    def margin_matrix(self) -> Optional[np.ndarray]:
        """Dense (n_modes, 6) margin matrix, or ``None`` (schema 1)."""
        layout = self._layout
        if not layout.has_margins:
            return None
        return self._float_view(
            layout.margins, layout.n_modes * layout.MARGIN_FIELDS
        ).reshape(layout.n_modes, layout.MARGIN_FIELDS)

    # -- materialization -----------------------------------------------------

    @property
    def table(self) -> ModeTable:
        """The :class:`ModeTable`, rebuilt from the mapped blocks.

        Floats cross as binary ``float64``, so the result compares
        ``==`` to the exported table; mode insertion order is preserved
        so power tie-breaks replay identically.
        """
        if self._table is None:
            self._table = self._materialize()
        return self._table

    def _materialize(self) -> ModeTable:
        if self._closed:
            raise ServeError("shared mode table is closed")
        layout = self._layout
        buf = self._shm.buf
        scalars = self._float_view(layout.scalars, layout.N_SCALARS)
        design_name = bytes(
            buf[layout.name : layout.name + layout.name_len]
        ).decode("utf-8")
        keys = [int(k) for k in self.mode_keys]
        fields = self._float_view(
            layout.mode_fields, layout.n_modes * layout.MODE_FIELDS
        ).reshape(layout.n_modes, layout.MODE_FIELDS)
        bb = np.frombuffer(
            buf,
            dtype=np.uint8,
            count=layout.n_modes * layout.bb_width,
            offset=layout.bb_matrix,
        ).reshape(layout.n_modes, layout.bb_width)
        modes = {
            bits: OperatingPoint(
                active_bits=bits,
                vdd=float(fields[row, 0]),
                bb_config=tuple(bool(f) for f in bb[row]),
                total_power_w=float(fields[row, 1]),
                dynamic_power_w=float(fields[row, 2]),
                leakage_power_w=float(fields[row, 3]),
                worst_slack_ps=float(fields[row, 4]),
            )
            for row, bits in enumerate(keys)
        }
        energy = self.transition_energy_matrix
        settle = self.transition_settle_matrix
        transitions = {
            (a, b): TransitionCost(
                energy_j=float(energy[i, j]), settle_ns=float(settle[i, j])
            )
            for i, a in enumerate(keys)
            for j, b in enumerate(keys)
        }
        margins = None
        margin_rows = self.margin_matrix
        if margin_rows is not None:
            margins = {
                bits: ModeMargin(
                    guarded_slack_ps=float(margin_rows[row, 0]),
                    mean_slack_ps=float(margin_rows[row, 1]),
                    sigma_slack_ps=float(margin_rows[row, 2]),
                    timing_yield=float(margin_rows[row, 3]),
                    target_yield=float(margin_rows[row, 4]),
                    samples=int(margin_rows[row, 5]),
                )
                for row, bits in enumerate(keys)
            }
        areas = tuple(
            float(a) for a in self._float_view(layout.areas, layout.n_areas)
        )
        learned = None
        if layout.learned_len:
            learned_payload = bytes(
                buf[layout.learned : layout.learned + layout.learned_len]
            ).decode("utf-8")
            # Decoding the embedded spec is not a table re-parse: the
            # ``json`` counter tracks full-artifact ModeTable.from_dict
            # calls the shared segment exists to avoid.
            learned = LearnedPolicySpec.from_dict(json.loads(learned_payload))
        return ModeTable(
            design_name=design_name,
            fclk_ghz=float(scalars[0]),
            num_domains=layout.num_domains,
            domain_areas_um2=areas,
            fbb_voltage=float(scalars[1]),
            generator=BiasGeneratorModel(
                transition_time_ns=float(scalars[2]),
                well_cap_ff_per_um2=float(scalars[3]),
                pump_efficiency=float(scalars[4]),
                vdd_transition_time_ns=float(scalars[5]),
                rail_cap_ff_per_um2=float(scalars[6]),
                regulator_efficiency=float(scalars[7]),
            ),
            modes=modes,
            transitions=transitions,
            margins=margins,
            learned=learned,
        )
