"""Errors of the serving subsystem.

:class:`ServeError` subclasses :class:`ValueError` so existing callers
that guard artifact loading with ``except ValueError`` keep working; new
code should catch :class:`ServeError` to distinguish "this artifact /
request is bad" from programming errors.
"""

from __future__ import annotations


class ServeError(ValueError):
    """A serving artifact or request is invalid, corrupt or truncated."""
