"""Errors of the serving subsystem.

:class:`ServeError` subclasses :class:`ValueError` so existing callers
that guard artifact loading with ``except ValueError`` keep working; new
code should catch :class:`ServeError` to distinguish "this artifact /
request is bad" from programming errors.

The wire side uses :func:`error_payload`: every fault a client can
trigger over the JSON-lines socket (malformed JSON, oversized line,
missing fields, accuracy violation) is answered with one structured
shape -- ``{"error": {"kind", "message", "recoverable"}}`` -- instead of
a raw traceback or a dropped connection.  ``recoverable`` tells the
client whether the same connection can keep submitting (``False`` only
when the server cannot resynchronize the line stream, e.g. after an
oversized line).
"""

from __future__ import annotations

from typing import Dict


class ServeError(ValueError):
    """A serving artifact or request is invalid, corrupt or truncated."""


class RecalibrationError(ServeError):
    """A canary-probe recalibration round could not run or complete.

    Always *recoverable*: the guard keeps serving on its last committed
    margin estimates (which are conservative by construction), so a
    failed probe degrades the control loop, not the accuracy invariant.
    """


#: Wire error kinds (the ``kind`` field of :func:`error_payload`).
ERROR_BAD_JSON = "bad_json"
ERROR_NOT_OBJECT = "not_object"
ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERSIZED_LINE = "oversized_line"
ERROR_ACCURACY_VIOLATION = "accuracy_violation"
ERROR_RECALIBRATION_FAILED = "recalibration_failed"

ERROR_KINDS = frozenset(
    {
        ERROR_BAD_JSON,
        ERROR_NOT_OBJECT,
        ERROR_BAD_REQUEST,
        ERROR_OVERSIZED_LINE,
        ERROR_ACCURACY_VIOLATION,
        ERROR_RECALIBRATION_FAILED,
    }
)


def error_payload(
    kind: str, message: str, recoverable: bool = True
) -> Dict:
    """The structured wire form of one serve-side error."""
    if kind not in ERROR_KINDS:
        raise ValueError(
            f"unknown error kind {kind!r}; choose from {sorted(ERROR_KINDS)}"
        )
    return {
        "error": {
            "kind": kind,
            "message": message,
            "recoverable": recoverable,
        }
    }
