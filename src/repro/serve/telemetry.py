"""Per-request counters and histograms for the serving subsystem.

Everything here is deterministic and dependency-free: fixed-bucket
histograms (geometric bounds) with exact count/sum/min/max, and a flat
counter map.  Snapshots are plain JSON-ready dicts so the server can
answer a ``stats`` request or dump telemetry at shutdown without any
formatting layer.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

import numpy as np


def geometric_bounds(
    lo: float, hi: float, per_decade: int = 4
) -> List[float]:
    """Geometrically spaced bucket bounds covering [lo, hi]."""
    if lo <= 0.0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    bounds = []
    factor = 10.0 ** (1.0 / per_decade)
    value = lo
    while value < hi * (1.0 + 1e-12):
        bounds.append(value)
        value *= factor
    return bounds


class Histogram:
    """Fixed-bound histogram with exact moments and bucket percentiles.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything larger.  Percentiles
    return the upper edge of the bucket containing the rank (the usual
    Prometheus-style conservative estimate).
    """

    def __init__(self, bounds: Sequence[float], unit: str = ""):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds = [float(b) for b in bounds]
        self.unit = unit
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        index = bisect_right(self.bounds, value)
        if index > 0 and value == self.bounds[index - 1]:
            index -= 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def record_many(self, values) -> None:
        """Vector form of :meth:`record`; bit-identical by construction.

        Bucket indices come from a vectorized ``searchsorted`` with the
        same on-boundary adjustment as the scalar path, and the counts
        land via ``bincount``.  The running ``sum`` is still folded
        left-to-right in python float arithmetic -- a numpy reduction
        would sum pairwise and drift from N scalar ``record`` calls.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        bounds = np.asarray(self.bounds)
        index = np.searchsorted(bounds, values, side="right")
        on_edge = (index > 0) & (
            values == bounds[np.maximum(index - 1, 0)]
        )
        index = index - on_edge
        for bucket, count in enumerate(
            np.bincount(index, minlength=len(self.counts)).tolist()
        ):
            self.counts[bucket] += count
        self.total += int(values.size)
        acc = self.sum
        for value in values.tolist():
            acc += value
        self.sum = acc
        lo = float(values.min())
        hi = float(values.max())
        self.min = lo if self.min is None else min(self.min, lo)
        self.max = hi if self.max is None else max(self.max, hi)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile (0..100)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.total == 0:
            return 0.0
        rank = p / 100.0 * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank and count > 0 or cumulative >= self.total:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]

    def to_dict(self) -> Dict:
        return {
            "unit": self.unit,
            "count": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "bounds": self.bounds,
            "counts": list(self.counts),
        }


class Telemetry:
    """All serve-side observability: counters, per-operator tallies, hists."""

    def __init__(self):
        self.counters: Dict[str, int] = {
            "requests": 0,
            "mode_switches": 0,
            "degraded": 0,
            "batched_slews": 0,
            "accuracy_violations": 0,
            "errors": 0,
            # Resilience path (margin guard / fault handling).
            "margin_fallbacks": 0,
            "transition_retries": 0,
            "transition_failures": 0,
            # Fleet tier (bus-driven retreat; see repro.fleet).
            "fleet_alerts": 0,
            "fleet_retreats": 0,
            # Recalibration loop (canary probes; see repro.serve.recal).
            "recal_probes": 0,
            "recal_epochs": 0,
            "recal_failures": 0,
            "recal_demotions": 0,
            "recal_readvances": 0,
        }
        self.per_operator: Dict[str, int] = {}
        # Service latency: queue wait + settling, in virtual ns.
        self.latency_ns = Histogram(
            geometric_bounds(1.0, 1e7), unit="ns"
        )
        # Settling time of actual hardware transitions.
        self.settle_ns = Histogram(geometric_bounds(1.0, 1e6), unit="ns")
        # Per-request served energy (compute + transition share), in pJ.
        self.energy_pj = Histogram(geometric_bounds(1e-3, 1e9), unit="pJ")
        # Energy spent on canary recalibration probes, per round, in pJ.
        self.probe_energy_pj = Histogram(
            geometric_bounds(1e-3, 1e9), unit="pJ"
        )

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def record_phase(self, served) -> None:
        """Account one ServedPhase (duck-typed to avoid an import cycle)."""
        self.bump("requests")
        self.per_operator[served.operator] = (
            self.per_operator.get(served.operator, 0) + 1
        )
        if served.switched:
            self.bump("mode_switches")
        if served.degraded:
            self.bump("degraded")
        if served.batched:
            self.bump("batched_slews")
        self.latency_ns.record(served.queue_wait_ns + served.settle_ns)
        if served.settle_ns > 0.0:
            self.settle_ns.record(served.settle_ns)
        self.energy_pj.record(
            (served.compute_energy_j + served.transition_energy_j) * 1e12
        )

    def record_batch(
        self,
        operator_counts: Dict[str, int],
        num_switched: int,
        num_degraded: int,
        num_batched: int,
        latency_values,
        settle_values,
        energy_values,
    ) -> None:
        """Batched :meth:`record_phase`: same totals as N scalar calls.

        Counter bumps are integer sums (order-free); histogram values
        must arrive in frame submission order (``settle_values`` already
        filtered to the positive entries, order preserved) so the
        float ``sum`` folds match the scalar sequence exactly.
        """
        self.bump("requests", sum(operator_counts.values()))
        for operator, count in operator_counts.items():
            self.per_operator[operator] = (
                self.per_operator.get(operator, 0) + count
            )
        if num_switched:
            self.bump("mode_switches", num_switched)
        if num_degraded:
            self.bump("degraded", num_degraded)
        if num_batched:
            self.bump("batched_slews", num_batched)
        self.latency_ns.record_many(latency_values)
        self.settle_ns.record_many(settle_values)
        self.energy_pj.record_many(energy_values)

    def snapshot(self) -> Dict:
        return {
            "counters": dict(self.counters),
            "per_operator": dict(self.per_operator),
            "latency_ns": self.latency_ns.to_dict(),
            "settle_ns": self.settle_ns.to_dict(),
            "energy_pj": self.energy_pj.to_dict(),
            "probe_energy_pj": self.probe_energy_pj.to_dict(),
        }
