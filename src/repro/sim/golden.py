"""Bit-exact numpy reference models for the operator generators.

Every netlist generator in :mod:`repro.operators` has a golden model here
with identical arithmetic semantics (word widths, truncation points,
cycle timing), so functional tests can compare integer-for-integer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.operators.fir import FirParameters


def _wrap_signed(values: np.ndarray, width: int) -> np.ndarray:
    """Reduce integers into the signed two's-complement range of *width* bits."""
    modulus = 1 << width
    wrapped = np.mod(np.asarray(values, dtype=np.int64), modulus)
    sign = 1 << (width - 1)
    return np.where(wrapped >= sign, wrapped - modulus, wrapped)


def multiply_reference(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Signed product of two *width*-bit words (exact, 2*width bits)."""
    a = _wrap_signed(a, width)
    b = _wrap_signed(b, width)
    return _wrap_signed(a * b, 2 * width)


def multiply_unsigned_reference(
    a: np.ndarray, b: np.ndarray, width: int
) -> np.ndarray:
    """Unsigned product of two *width*-bit words."""
    modulus = 1 << width
    return (np.mod(a, modulus) * np.mod(b, modulus)) % (modulus * modulus)


def butterfly_reference(
    ar: np.ndarray, ai: np.ndarray,
    br: np.ndarray, bi: np.ndarray,
    wr: np.ndarray, wi: np.ndarray,
    width: int = 16,
) -> Dict[str, np.ndarray]:
    """Reference for :func:`repro.operators.butterfly.fft_butterfly`.

    Mirrors the netlist's exact arithmetic: 17-bit pre-add/sub, 33-bit
    products and product combination (modulo 2**33), arithmetic right shift
    by width-1, 16-bit wrap-around output adds.
    """
    ar, ai = _wrap_signed(ar, width), _wrap_signed(ai, width)
    br, bi = _wrap_signed(br, width), _wrap_signed(bi, width)
    wr, wi = _wrap_signed(wr, width), _wrap_signed(wi, width)
    pre_width = width + 1
    prod_width = pre_width + width

    s1 = _wrap_signed(br + bi, pre_width)
    d1 = _wrap_signed(wi - wr, pre_width)
    s2 = _wrap_signed(wi + wr, pre_width)
    k1 = _wrap_signed(s1 * wr, prod_width)
    k2 = _wrap_signed(d1 * br, prod_width)
    k3 = _wrap_signed(s2 * bi, prod_width)

    real_full = _wrap_signed(k1 - k3, prod_width)
    imag_full = _wrap_signed(k1 + k2, prod_width)
    shift = width - 1
    # The netlist takes product bits [shift, shift+width); on the signed
    # full word that is an arithmetic shift followed by a 16-bit wrap.
    wb_r = _wrap_signed(real_full >> shift, width)
    wb_i = _wrap_signed(imag_full >> shift, width)

    return {
        "XR": _wrap_signed(ar + wb_r, width),
        "XI": _wrap_signed(ai + wb_i, width),
        "YR": _wrap_signed(ar - wb_r, width),
        "YI": _wrap_signed(ai - wb_i, width),
    }


def cordic_reference(
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    width: int = 16,
    iterations: int = 12,
) -> Dict[str, np.ndarray]:
    """Reference for :func:`repro.operators.cordic.cordic_rotator`.

    Mirrors the netlist bit-exactly: per-iteration arithmetic right
    shifts, add/sub selected by the current sign of z, everything modulo
    2**width.
    """
    from repro.operators.cordic import cordic_angle_lsbs

    x = _wrap_signed(x, width).astype(np.int64)
    y = _wrap_signed(y, width).astype(np.int64)
    z = _wrap_signed(z, width).astype(np.int64)
    for i, angle in enumerate(cordic_angle_lsbs(iterations, width)):
        positive = z >= 0
        x_shift = x >> i  # numpy >> on int64 is arithmetic
        y_shift = y >> i
        x_next = np.where(positive, x - y_shift, x + y_shift)
        y_next = np.where(positive, y + x_shift, y - x_shift)
        z_next = np.where(positive, z - angle, z + angle)
        x = _wrap_signed(x_next, width)
        y = _wrap_signed(y_next, width)
        z = _wrap_signed(z_next, width)
    return {"XO": x, "YO": y, "ZO": z}


def fir_reference(
    x_per_cycle: Sequence[np.ndarray],
    c_per_cycle: Sequence[np.ndarray],
    params: FirParameters = FirParameters(),
) -> List[Dict[str, np.ndarray]]:
    """Cycle-accurate reference for :func:`repro.operators.fir.fir_filter`.

    Takes the per-cycle values of the ``X`` and ``C`` input ports and
    returns, per cycle, the ``Y`` (accumulator) and ``TAP`` (counter)
    values as sampled by the netlist simulator -- i.e. the combinational
    view *before* the cycle's clock edge.
    """
    cycles = len(x_per_cycle)
    if cycles != len(c_per_cycle):
        raise ValueError("X and C stimulus must cover the same cycles")
    batch = len(np.asarray(x_per_cycle[0]))
    width, taps, acc_width = params.width, params.taps, params.accumulator_width

    count = 0
    delay = [np.zeros(batch, dtype=np.int64) for _ in range(taps)]
    acc = np.zeros(batch, dtype=np.int64)
    c_reg = np.zeros(batch, dtype=np.int64)
    results: List[Dict[str, np.ndarray]] = []

    for cycle in range(cycles):
        x_now = _wrap_signed(np.asarray(x_per_cycle[cycle]), width)
        c_now = _wrap_signed(np.asarray(c_per_cycle[cycle]), width)

        # Combinational view during this cycle (state from previous edge).
        results.append({"Y": acc.copy(), "TAP": np.full(batch, count)})

        # Clock edge: the netlist's next-state functions.
        wrap = count == taps - 1
        first = count == 0
        tap_word = delay[count]
        product = _wrap_signed(tap_word * c_reg, acc_width)
        base = np.zeros(batch, dtype=np.int64) if first else acc
        acc = _wrap_signed(base + product, acc_width)
        if wrap:
            delay = [x_now] + delay[:-1]
            count = 0
        else:
            count += 1
        c_reg = c_now
    return results
