"""Levelized two-valued logic simulator, vectorized over a stimulus batch.

Two evaluation modes:

* ``TRANSPARENT`` -- flip-flops behave as wires (Q = D combinationally).
  Valid only for feed-forward pipelines (an error is raised if making DFFs
  transparent creates a loop); lets a whole pipeline be verified with a
  single evaluation per stimulus.
* ``CYCLE`` -- true cycle-accurate simulation: flip-flops hold state,
  inputs are applied per cycle, state advances on the (implicit) clock
  edge.  Required for the FIR (accumulator/counter/delay-line feedback).

Two execution engines behind the same API:

* ``interpreted`` -- one Python-level evaluation per cell on ``(batch,)``
  boolean arrays.  The reference semantics.
* ``packed`` -- the compiled bit-packed engine of :mod:`repro.sim.packed`:
  uint64 bitplanes, 64 stimuli per word, one vectorized bitwise op per
  (level, cell-template) group.  Bit-identical to the interpreted engine
  (boolean algebra is exact) and differential-tested to stay that way.

``engine="auto"`` (the default, overridable via ``$REPRO_SIM_ENGINE``)
compiles the packed engine and silently falls back to interpreted when
the netlist uses a template without a packed op or the host is
big-endian; ``engine="packed"`` makes that fallback an error.
"""

from __future__ import annotations

import enum
import os
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.netlist.cell import CellInst
from repro.netlist.netlist import Netlist
from repro.sim.packed import (
    PackedCompileError,
    PackedEngine,
    lane_mask,
    popcount_rows,
    unpack_lanes,
)
from repro.sim.vectors import bits_to_int, int_to_bits

#: Environment variable selecting the default simulation engine.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Valid engine requests.
ENGINES = ("auto", "packed", "interpreted")


def resolve_engine_request(engine: Optional[str]) -> str:
    """Normalize an engine request (None -> ``$REPRO_SIM_ENGINE`` -> auto).

    Delegates to :func:`repro.core.config.resolve_env_choice`, the one
    choice-knob policy shared with the STA and serve engine selectors.
    """
    from repro.core.config import resolve_env_choice

    return resolve_env_choice(
        engine, ENGINE_ENV_VAR, ENGINES, what="simulation engine"
    )


class SimulationMode(enum.Enum):
    TRANSPARENT = "transparent"
    CYCLE = "cycle"


class LogicSimulator:
    """Compiles a netlist once, then evaluates stimulus batches."""

    def __init__(
        self,
        netlist: Netlist,
        mode: SimulationMode = SimulationMode.CYCLE,
        engine: Optional[str] = None,
    ):
        self.netlist = netlist
        self.mode = mode
        self._order = self._compile_order()
        requested = resolve_engine_request(engine)
        self._packed: Optional[PackedEngine] = None
        if requested != "interpreted":
            try:
                self._packed = PackedEngine(
                    netlist, self._order, mode is SimulationMode.TRANSPARENT
                )
            except PackedCompileError:
                if requested == "packed":
                    raise
        #: The engine actually in use ("packed" or "interpreted").
        self.engine = "packed" if self._packed is not None else "interpreted"

    # -- compilation -------------------------------------------------------

    def _compile_order(self) -> List[CellInst]:
        """Topological order; in TRANSPARENT mode DFFs join the order."""
        if self.mode is SimulationMode.CYCLE:
            return self.netlist.topological_cells()
        # Transparent: Kahn over all cells, DFF acting as a D->Q wire.
        in_degree: Dict[int, int] = {}
        ready: List[CellInst] = []
        for cell in self.netlist.cells:
            degree = 0
            data_inputs = self._data_inputs(cell)
            for net in data_inputs:
                if net.driver is not None:
                    degree += 1
            in_degree[cell.index] = degree
            if degree == 0:
                ready.append(cell)
        order: List[CellInst] = []
        cursor = 0
        while cursor < len(ready):
            cell = ready[cursor]
            cursor += 1
            order.append(cell)
            for net in cell.output_nets:
                for sink in net.sinks:
                    consumer = sink.cell
                    if consumer.is_sequential and sink.pin_name == "CK":
                        continue
                    in_degree[consumer.index] -= 1
                    if in_degree[consumer.index] == 0:
                        ready.append(consumer)
        if len(order) != len(self.netlist.cells):
            raise ValueError(
                "netlist has sequential feedback; TRANSPARENT mode is only "
                "valid for feed-forward pipelines -- use CYCLE mode"
            )
        return order

    @staticmethod
    def _data_inputs(cell: CellInst):
        """Input nets that carry data (the clock pin is not a dependency)."""
        if not cell.is_sequential:
            return cell.input_nets
        return [
            net
            for pin, net in zip(cell.template.inputs, cell.input_nets)
            if pin != "CK"
        ]

    # -- evaluation ---------------------------------------------------------

    def _evaluate_combinational(
        self, values: Dict[int, np.ndarray], batch: int
    ) -> None:
        """Evaluate all cells in order, updating *values* keyed by net index.

        In CYCLE mode, flip-flop outputs must be preloaded into *values*
        before calling.  Scalar results (tie cells) are broadcast to the
        batch shape so every net value has shape (batch,).
        """
        for cell in self._order:
            if cell.is_sequential:
                if self.mode is SimulationMode.TRANSPARENT:
                    d_net = cell.input_nets[0]
                    values[cell.output_nets[0].index] = values[d_net.index]
                continue
            inputs = [values[net.index] for net in cell.input_nets]
            outputs = cell.template.evaluate(*inputs)
            for net, out in zip(cell.output_nets, outputs):
                out = np.asarray(out, dtype=bool)
                if out.ndim == 0:
                    out = np.broadcast_to(out, (batch,))
                values[net.index] = out

    def _apply_inputs(
        self,
        values: Dict[int, np.ndarray],
        inputs: Mapping[str, np.ndarray],
        batch: int,
    ) -> None:
        for bus_name, words in inputs.items():
            bus = self.netlist.input_buses[bus_name]
            bit_matrix = int_to_bits(np.asarray(words), bus.width)
            if bit_matrix.shape[0] != batch:
                raise ValueError(
                    f"bus {bus_name!r}: batch {bit_matrix.shape[0]} != {batch}"
                )
            for position, net in enumerate(bus.nets):
                values[net.index] = bit_matrix[:, position]

    def _collect_outputs(
        self, values: Dict[int, np.ndarray], signed: Optional[bool]
    ) -> Dict[str, np.ndarray]:
        """Pack output buses to integers; *signed* None uses each bus's own
        declared signedness."""
        result = {}
        for bus_name, bus in self.netlist.output_buses.items():
            bits = np.stack([values[net.index] for net in bus.nets], axis=1)
            bus_signed = bus.signed if signed is None else signed
            result[bus_name] = bits_to_int(bits, signed=bus_signed)
        return result

    def run_combinational(
        self,
        inputs: Mapping[str, np.ndarray],
        signed: Optional[bool] = None,
    ) -> Dict[str, np.ndarray]:
        """Single evaluation of a feed-forward netlist (TRANSPARENT mode).

        *inputs* maps bus name to an integer array; returns bus name ->
        integer array for every output bus.
        """
        if self.mode is not SimulationMode.TRANSPARENT:
            raise ValueError("run_combinational requires TRANSPARENT mode")
        batch = len(next(iter(inputs.values())))
        missing = set(self.netlist.input_buses) - set(inputs)
        if missing:
            raise ValueError(f"missing stimulus for input buses: {sorted(missing)}")
        if self._packed is not None:
            packed = self._packed
            plane = packed.new_values(batch)
            packed.apply_inputs(plane, inputs, batch)
            packed.evaluate(plane)
            return packed.collect_outputs(plane, batch, signed)
        values: Dict[int, np.ndarray] = {}
        self._apply_inputs(values, inputs, batch)
        self._evaluate_combinational(values, batch)
        return self._collect_outputs(values, signed)

    def run_cycles(
        self,
        per_cycle_inputs: Sequence[Mapping[str, np.ndarray]],
        signed: Optional[bool] = None,
        collect_net_values: bool = False,
    ) -> "CycleTrace":
        """Cycle-accurate simulation.

        *per_cycle_inputs* is one input mapping per clock cycle; each maps
        every input bus to a (batch,) integer array.  Flip-flops start at
        zero.  Output buses are sampled combinationally at the end of each
        cycle (i.e. after the values launched by the previous edge have
        propagated).

        With *collect_net_values*, the trace also stores the boolean value
        of every net at every cycle (needed for activity extraction).
        """
        if self.mode is not SimulationMode.CYCLE:
            raise ValueError("run_cycles requires CYCLE mode")
        if not per_cycle_inputs:
            raise ValueError("need at least one cycle of stimulus")
        batch = self._infer_batch(per_cycle_inputs)
        if self._packed is not None:
            return self._run_cycles_packed(
                per_cycle_inputs, batch, signed, collect_net_values
            )
        zeros = np.zeros(batch, dtype=bool)

        state: Dict[int, np.ndarray] = {
            ff.output_nets[0].index: zeros.copy()
            for ff in self.netlist.sequential_cells
        }
        outputs_per_cycle: List[Dict[str, np.ndarray]] = []
        net_values_per_cycle: List[np.ndarray] = []

        for cycle_inputs in per_cycle_inputs:
            values: Dict[int, np.ndarray] = dict(state)
            self._apply_inputs(values, cycle_inputs, batch)
            if self.netlist.clock_net is not None:
                values[self.netlist.clock_net.index] = zeros
            self._evaluate_combinational(values, batch)
            outputs_per_cycle.append(self._collect_outputs(values, signed))
            if collect_net_values:
                stacked = np.stack(
                    [values[i] for i in range(len(self.netlist.nets))]
                )
                net_values_per_cycle.append(stacked)
            # Clock edge: capture every DFF's D input.
            state = {
                ff.output_nets[0].index: values[ff.input_nets[0].index]
                for ff in self.netlist.sequential_cells
            }
        return CycleTrace(self.netlist, outputs_per_cycle, net_values_per_cycle)

    @staticmethod
    def _infer_batch(
        per_cycle_inputs: Sequence[Mapping[str, np.ndarray]],
    ) -> int:
        """Batch size from the first non-empty cycle input (else 1:
        autonomous netlists without input buses run batch-of-one)."""
        for cycle_inputs in per_cycle_inputs:
            if cycle_inputs:
                return len(next(iter(cycle_inputs.values())))
        return 1

    def _run_cycles_packed(
        self,
        per_cycle_inputs: Sequence[Mapping[str, np.ndarray]],
        batch: int,
        signed: Optional[bool],
        collect_net_values: bool,
    ) -> "CycleTrace":
        """Cycle loop on uint64 bitplanes; same trace as the dict loop."""
        packed = self._packed
        values = packed.new_values(batch)
        state = np.zeros((len(packed.ff_q), values.shape[1]), dtype=np.uint64)
        has_state = len(packed.ff_q) > 0
        outputs_per_cycle: List[Dict[str, np.ndarray]] = []
        net_values_per_cycle: List[np.ndarray] = []
        for cycle_inputs in per_cycle_inputs:
            if has_state:
                values[packed.ff_q] = state
            packed.apply_inputs(values, cycle_inputs, batch)
            if packed.clock_index is not None:
                values[packed.clock_index] = 0
            packed.evaluate(values)
            outputs_per_cycle.append(
                packed.collect_outputs(values, batch, signed)
            )
            if collect_net_values:
                net_values_per_cycle.append(unpack_lanes(values, batch))
            if has_state:
                state = values[packed.ff_d]
        return CycleTrace(self.netlist, outputs_per_cycle, net_values_per_cycle)

    def toggle_rates(
        self,
        per_cycle_inputs: Sequence[Mapping[str, np.ndarray]],
        warmup_cycles: int = 0,
    ) -> np.ndarray:
        """Per-net average toggles per cycle, after *warmup_cycles* of
        reset transient.  The clock net is fixed at 2 transitions/cycle.

        On the packed engine this streams: consecutive post-warmup
        bitplane frames are XORed and popcounted into per-net counters,
        so no per-cycle net-value matrix is ever materialized.  The
        interpreted engine runs the legacy ``collect_net_values`` path.
        Both produce bit-identical rates: integer toggle counts over the
        same ``(kept_cycles - 1) * batch`` transitions.
        """
        if self.mode is not SimulationMode.CYCLE:
            raise ValueError("toggle_rates requires CYCLE mode")
        if not per_cycle_inputs:
            raise ValueError("need at least one cycle of stimulus")
        if len(per_cycle_inputs) - warmup_cycles < 2:
            raise ValueError("need at least two cycles to count toggles")
        if self._packed is None:
            trace = self.run_cycles(per_cycle_inputs, collect_net_values=True)
            trace.net_values_per_cycle = trace.net_values_per_cycle[
                warmup_cycles:
            ]
            return trace.toggle_counts()
        return self._toggle_rates_packed(per_cycle_inputs, warmup_cycles)

    def _toggle_rates_packed(
        self,
        per_cycle_inputs: Sequence[Mapping[str, np.ndarray]],
        warmup_cycles: int,
    ) -> np.ndarray:
        packed = self._packed
        batch = self._infer_batch(per_cycle_inputs)
        values = packed.new_values(batch)
        state = np.zeros((len(packed.ff_q), values.shape[1]), dtype=np.uint64)
        has_state = len(packed.ff_q) > 0
        # Padding lanes of the last word can flip (TIEHI sets them,
        # autonomous feedback evolves them) -- mask them out of counts.
        tail_mask = lane_mask(batch)[-1]
        partial_tail = batch % 64 != 0
        counts = np.zeros(packed.num_nets, dtype=np.int64)
        previous: Optional[np.ndarray] = None
        flips = np.empty_like(values)
        prepacked = packed.prepack_cycles(per_cycle_inputs, batch)
        for cycle, cycle_inputs in enumerate(per_cycle_inputs):
            if has_state:
                values[packed.ff_q] = state
            if prepacked is not None:
                for bus_rows, planes in prepacked:
                    values[bus_rows] = planes[cycle]
            else:
                packed.apply_inputs(values, cycle_inputs, batch)
            if packed.clock_index is not None:
                values[packed.clock_index] = 0
            packed.evaluate(values)
            if has_state:
                state = values[packed.ff_d]
            if cycle < warmup_cycles:
                continue
            if previous is None:
                previous = np.empty_like(values)
            else:
                np.bitwise_xor(values, previous, out=flips)
                if partial_tail:
                    flips[:, -1] &= tail_mask
                counts += popcount_rows(flips)
            previous[:, :] = values
        kept = len(per_cycle_inputs) - warmup_cycles
        transitions = (kept - 1) * batch
        rates = counts.astype(np.float64) / transitions
        if packed.clock_index is not None:
            rates[packed.clock_index] = 2.0
        return rates


class CycleTrace:
    """Results of a cycle-accurate run."""

    def __init__(
        self,
        netlist: Netlist,
        outputs_per_cycle: List[Dict[str, np.ndarray]],
        net_values_per_cycle: List[np.ndarray],
    ):
        self.netlist = netlist
        self.outputs_per_cycle = outputs_per_cycle
        self.net_values_per_cycle = net_values_per_cycle

    def output(self, bus: str, cycle: int) -> np.ndarray:
        """Integer value of output *bus* at *cycle*."""
        return self.outputs_per_cycle[cycle][bus]

    @property
    def cycles(self) -> int:
        return len(self.outputs_per_cycle)

    def toggle_counts(self) -> np.ndarray:
        """Average toggles per net per cycle, shape (num_nets,).

        Requires the run to have collected net values.  The clock net is
        assigned the conventional 2 transitions per cycle.
        """
        if not self.net_values_per_cycle:
            raise ValueError("run_cycles(collect_net_values=True) required")
        if len(self.net_values_per_cycle) < 2:
            raise ValueError("need at least two cycles to count toggles")
        # Shape (cycles, num_nets, batch): XOR consecutive cycles, then sum
        # over cycles and batch.
        history = np.stack(self.net_values_per_cycle)
        flips = history[1:] != history[:-1]
        transitions = flips.shape[0] * flips.shape[2]
        rates = flips.sum(axis=(0, 2)).astype(np.float64) / transitions
        if self.netlist.clock_net is not None:
            rates[self.netlist.clock_net.index] = 2.0
        return rates
