"""Accuracy metrics of LSB-gated (DVAS) operation.

The paper uses "accuracy" synonymously with active bitwidth; these metrics
quantify what a given bitwidth means at application level (mean error
distance, RMSE, SNR), which the examples use to put physical meaning on the
accuracy axis of the Pareto plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.sim.vectors import random_words, zero_lsbs


@dataclass(frozen=True)
class ErrorReport:
    """Error statistics of one accuracy mode against exact results."""

    active_bits: int
    mean_error_distance: float
    rmse: float
    max_error: float
    snr_db: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "active_bits": self.active_bits,
            "mean_error_distance": self.mean_error_distance,
            "rmse": self.rmse,
            "max_error": self.max_error,
            "snr_db": self.snr_db,
        }


def compare(exact: np.ndarray, approximate: np.ndarray, active_bits: int) -> ErrorReport:
    """Compute error statistics between two result vectors."""
    exact = np.asarray(exact, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    error = approximate - exact
    signal_power = float(np.mean(exact**2))
    noise_power = float(np.mean(error**2))
    if noise_power == 0.0:
        snr_db = float("inf")
    elif signal_power == 0.0:
        snr_db = float("-inf")
    else:
        snr_db = 10.0 * np.log10(signal_power / noise_power)
    return ErrorReport(
        active_bits=active_bits,
        mean_error_distance=float(np.mean(np.abs(error))),
        rmse=float(np.sqrt(noise_power)),
        max_error=float(np.max(np.abs(error))),
        snr_db=snr_db,
    )


def error_metrics(
    operation: Callable[[np.ndarray, np.ndarray], np.ndarray],
    width: int,
    active_bits: int,
    samples: int = 4096,
    seed: int = 7,
) -> ErrorReport:
    """Error of a binary *operation* when both operands lose their LSBs.

    *operation* is an exact integer function (e.g. signed multiply); the
    approximate result is the same function applied to LSB-gated operands,
    exactly what a DVAS-controlled operator computes.
    """
    rng = np.random.default_rng(seed)
    a = random_words(rng, samples, width, signed=True)
    b = random_words(rng, samples, width, signed=True)
    exact = operation(a, b)
    approximate = operation(
        zero_lsbs(a, width, active_bits), zero_lsbs(b, width, active_bits)
    )
    return compare(exact, approximate, active_bits)
