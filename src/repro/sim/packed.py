"""Compiled bit-packed logic simulation (the fast engine).

The interpreted path in :mod:`repro.sim.simulator` walks the netlist one
cell at a time, evaluating each gate on a ``(batch,)`` boolean array --
cheap per gate, but the per-cell Python dispatch dominates once activity
extraction multiplies simulations by accuracy modes.  This module
compiles the netlist once into flat numpy index arrays grouped by
(topological level, cell template) and packs the stimulus batch into
uint64 bitplanes, 64 stimuli per machine word: one vectorized bitwise
expression then evaluates *every* cell of one type at one level across
the whole batch.

Bitplane layout: net values live in a ``(num_nets, words)`` uint64
matrix with ``words = ceil(batch / 64)``; stimulus lane *k* is bit
``k % 64`` of word ``k // 64`` (little-endian bit order, matching
``np.packbits(..., bitorder="little")``).  Lanes past the batch -- the
padding of the last word -- carry garbage (e.g. TIEHI sets them all);
they are masked out of popcounts and never unpacked.

Cells at the same topological level cannot depend on each other (a
cell's level is ``max(input levels) + 1``), so each (level, template)
group is one gather / bitwise-op / scatter on whole rows of the value
matrix.  Boolean algebra on packed words is exact, which is what makes
the packed engine bit-identical to the interpreted one -- a property the
differential suite checks on random netlists.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.cell import CellInst
from repro.netlist.netlist import Netlist
from repro.sim.vectors import bits_to_int, int_to_bits

#: Stimulus lanes per machine word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class PackedCompileError(ValueError):
    """The netlist (or platform) cannot use the packed engine."""


def _packed_fa(a, b, ci):
    axb = a ^ b
    return (axb ^ ci, (a & b) | (ci & axb))


#: Bitwise evaluation per combinational cell template, operating on
#: ``(cells_in_group, words)`` uint64 matrices.  Input order matches the
#: template's pin order; tie cells (no inputs) are constant fills handled
#: by :data:`_TIE_VALUES`.
_PACKED_OPS: Dict[str, Callable[..., Tuple[np.ndarray, ...]]] = {
    "INV": lambda a: (~a,),
    "BUF": lambda a: (a,),
    "NAND2": lambda a, b: (~(a & b),),
    "NAND3": lambda a, b, c: (~(a & b & c),),
    "NOR2": lambda a, b: (~(a | b),),
    "NOR3": lambda a, b, c: (~(a | b | c),),
    "AND2": lambda a, b: (a & b,),
    "AND3": lambda a, b, c: (a & b & c,),
    "OR2": lambda a, b: (a | b,),
    "OR3": lambda a, b, c: (a | b | c,),
    "XOR2": lambda a, b: (a ^ b,),
    "XNOR2": lambda a, b: (~(a ^ b),),
    "AOI21": lambda a, b, c: (~((a & b) | c),),
    "OAI21": lambda a, b, c: (~((a | b) & c),),
    "MUX2": lambda a, b, s: ((a & ~s) | (b & s),),
    "HA": lambda a, b: (a ^ b, a & b),
    "FA": _packed_fa,
}

#: Constant word value per tie template.
_TIE_VALUES: Dict[str, np.uint64] = {
    "TIELO": np.uint64(0),
    "TIEHI": _ALL_ONES,
}


if hasattr(np, "bitwise_count"):

    def popcount_rows(words: np.ndarray) -> np.ndarray:
        """Total set bits per row of a ``(rows, words)`` uint64 matrix."""
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy < 2.0
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount_rows(words: np.ndarray) -> np.ndarray:
        """Total set bits per row of a ``(rows, words)`` uint64 matrix."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return _POP8[as_bytes].sum(axis=1, dtype=np.int64)


def words_for(batch: int) -> int:
    """Number of uint64 words holding *batch* lanes."""
    return -(-batch // WORD_BITS)


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, batch)`` boolean matrix into uint64 lane words.

    Returns ``(rows, words)``; padding lanes of the last word are zero.
    """
    bits = np.asarray(bits, dtype=bool)
    rows, batch = bits.shape
    width = words_for(batch) * WORD_BITS
    if batch != width:
        padded = np.zeros((rows, width), dtype=bool)
        padded[:, :batch] = bits
        bits = padded
    packed = np.packbits(bits, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_lanes(words: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: ``(rows, words)`` -> ``(rows, batch)``."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, count=batch, bitorder="little")
    return bits.astype(bool)


def lane_mask(batch: int) -> np.ndarray:
    """``(words,)`` uint64 mask with only the first *batch* lanes set."""
    mask = np.full(words_for(batch), _ALL_ONES, dtype=np.uint64)
    tail = batch % WORD_BITS
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


class PackedEngine:
    """One netlist compiled to level/template-grouped bitplane operations.

    The compile step happens once per :class:`~repro.sim.simulator.LogicSimulator`;
    evaluation then touches no Python-level per-cell state.  Construction
    raises :class:`PackedCompileError` when a cell template has no packed
    op or the host is big-endian (the uint64 view of packed bytes assumes
    little-endian lane order).
    """

    def __init__(
        self,
        netlist: Netlist,
        order: Sequence[CellInst],
        transparent: bool,
    ):
        if sys.byteorder != "little":  # pragma: no cover - exotic host
            raise PackedCompileError(
                "packed engine requires a little-endian host"
            )
        self.netlist = netlist
        self.num_nets = len(netlist.nets)
        self.transparent = transparent
        self.clock_index = (
            netlist.clock_net.index if netlist.clock_net is not None else None
        )

        # Group cells by (level, template).  The level is recomputed from
        # the evaluation *order* (not the netlist) so TRANSPARENT mode,
        # where flip-flops join the order as D->Q wires, levelizes too.
        net_level = np.zeros(self.num_nets, dtype=np.int64)
        grouped: Dict[
            Tuple[int, str], List[Tuple[List[int], List[int]]]
        ] = {}
        for cell in order:
            if cell.is_sequential:
                if not transparent:
                    raise PackedCompileError(
                        "sequential cell in a CYCLE-mode combinational order"
                    )
                op_name = "BUF"  # transparent DFF: Q = D
                in_idx = [cell.input_nets[0].index]
                out_idx = [cell.output_nets[0].index]
            else:
                op_name = cell.template.name
                if op_name not in _PACKED_OPS and op_name not in _TIE_VALUES:
                    raise PackedCompileError(
                        f"no packed op for cell template {op_name!r}"
                    )
                in_idx = [net.index for net in cell.input_nets]
                out_idx = [net.index for net in cell.output_nets]
            level = 0
            for index in in_idx:
                level = max(level, int(net_level[index]))
            for index in out_idx:
                net_level[index] = level + 1
            grouped.setdefault((level, op_name), []).append((in_idx, out_idx))

        # Each group becomes one gather / bitwise op / scatter.  All input
        # rows of the group are gathered with a single pre-raveled
        # ``take`` (an order of magnitude cheaper than one fancy index
        # per pin) and reshaped to (pins, cells_in_group, words).
        self._groups: List[tuple] = []
        for level, op_name in sorted(grouped):
            members = grouped[(level, op_name)]
            num_in = len(members[0][0])
            in_flat = np.asarray(
                [m[0][pin] for pin in range(num_in) for m in members],
                dtype=np.intp,
            )
            out_cols = tuple(
                np.asarray([m[1][pin] for m in members], dtype=np.intp)
                for pin in range(len(members[0][1]))
            )
            if op_name in _TIE_VALUES:
                self._groups.append(
                    (None, _TIE_VALUES[op_name], None, 0, 0, out_cols)
                )
            else:
                self._groups.append(
                    (
                        _PACKED_OPS[op_name],
                        None,
                        in_flat,
                        num_in,
                        len(members),
                        out_cols,
                    )
                )

        # Flip-flop state rows for CYCLE mode.
        sequential = netlist.sequential_cells
        self.ff_q = np.asarray(
            [cell.output_nets[0].index for cell in sequential], dtype=np.intp
        )
        self.ff_d = np.asarray(
            [cell.input_nets[0].index for cell in sequential], dtype=np.intp
        )

        # Port-bus net rows, precomputed for apply/collect.
        self._bus_rows = {
            name: np.asarray([net.index for net in bus.nets], dtype=np.intp)
            for name, bus in netlist.input_buses.items()
        }
        self._out_bus_rows = {
            name: np.asarray([net.index for net in bus.nets], dtype=np.intp)
            for name, bus in netlist.output_buses.items()
        }

    # -- evaluation ---------------------------------------------------------

    def new_values(self, batch: int) -> np.ndarray:
        """A zeroed ``(num_nets, words)`` value matrix for *batch* lanes."""
        return np.zeros((self.num_nets, words_for(batch)), dtype=np.uint64)

    def evaluate(self, values: np.ndarray) -> None:
        """Evaluate every compiled group in level order, in place."""
        words = values.shape[1]
        for op, fill, in_flat, num_in, group_size, out_cols in self._groups:
            if op is None:
                for col in out_cols:
                    values[col] = fill
                continue
            gathered = values.take(in_flat, axis=0).reshape(
                num_in, group_size, words
            )
            outputs = op(*gathered)
            for col, out in zip(out_cols, outputs):
                values[col] = out

    def apply_inputs(
        self,
        values: np.ndarray,
        inputs: Mapping[str, np.ndarray],
        batch: int,
    ) -> None:
        """Pack integer bus stimulus into the value matrix."""
        for bus_name, stim_words in inputs.items():
            bus = self.netlist.input_buses[bus_name]
            bit_matrix = int_to_bits(np.asarray(stim_words), bus.width)
            if bit_matrix.shape[0] != batch:
                raise ValueError(
                    f"bus {bus_name!r}: batch {bit_matrix.shape[0]} != {batch}"
                )
            values[self._bus_rows[bus_name]] = pack_lanes(bit_matrix.T)

    def prepack_cycles(
        self,
        per_cycle_inputs: Sequence[Mapping[str, np.ndarray]],
        batch: int,
    ) -> Optional[List[Tuple[np.ndarray, np.ndarray]]]:
        """Pack a whole stimulus schedule into per-bus bitplane stacks.

        Returns ``[(bus_net_rows, planes)]`` with ``planes`` of shape
        ``(cycles, width, words)`` -- one ``packbits`` per bus instead of
        one per (bus, cycle), which is what makes the streaming toggle
        loop cheap.  Returns ``None`` when the bus set varies between
        cycles (the per-cycle apply path handles that general case).
        """
        if not per_cycle_inputs:
            return None
        names = set(per_cycle_inputs[0])
        if any(set(cycle) != names for cycle in per_cycle_inputs[1:]):
            return None
        cycles = len(per_cycle_inputs)
        plan: List[Tuple[np.ndarray, np.ndarray]] = []
        for name in names:
            bus = self.netlist.input_buses[name]
            stim = [np.asarray(cycle[name]) for cycle in per_cycle_inputs]
            for cycle_stim in stim:
                if len(cycle_stim) != batch:
                    raise ValueError(
                        f"bus {name!r}: batch {len(cycle_stim)} != {batch}"
                    )
            bits = int_to_bits(np.concatenate(stim), bus.width)
            per_net = (
                bits.reshape(cycles, batch, bus.width)
                .transpose(0, 2, 1)
                .reshape(cycles * bus.width, batch)
            )
            planes = pack_lanes(per_net).reshape(cycles, bus.width, -1)
            plan.append((self._bus_rows[name], planes))
        return plan

    def collect_outputs(
        self, values: np.ndarray, batch: int, signed: Optional[bool]
    ) -> Dict[str, np.ndarray]:
        """Unpack output buses back to integers (bus signedness by default)."""
        result = {}
        for name, bus in self.netlist.output_buses.items():
            bits = unpack_lanes(values[self._out_bus_rows[name]], batch)
            bus_signed = bus.signed if signed is None else signed
            result[name] = bits_to_int(bits.T, signed=bus_signed)
        return result
