"""Switching-activity extraction (the flow's "VCD annotation" equivalent).

For each accuracy mode (active bitwidth) we simulate the netlist with
random stimulus whose LSBs are gated per DVAS, and record per-net toggle
rates.  Dynamic power analysis multiplies these rates by net capacitance,
VDD squared and clock frequency.

Simulation runs on :meth:`LogicSimulator.toggle_rates`: with the packed
engine (the default) consecutive-cycle bitplanes are XOR-popcounted into
per-net counters and no per-cycle net-value matrix is ever materialized;
the interpreted engine falls back to the legacy ``collect_net_values``
path.  Both are bit-identical, so memoized reports are valid whichever
engine produced them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.sim.simulator import (
    LogicSimulator,
    SimulationMode,
    resolve_engine_request,
)
from repro.sim.vectors import random_words, zero_lsbs


@dataclass
class ActivityReport:
    """Per-net toggle rates for one accuracy mode.

    ``rates[i]`` is the average number of transitions per clock cycle of
    net index *i*.  The clock net is fixed at 2 transitions per cycle.
    """

    netlist_name: str
    active_bits: int
    cycles: int
    batch: int
    rates: np.ndarray

    @property
    def mean_rate(self) -> float:
        return float(self.rates.mean())

    def nonzero_fraction(self) -> float:
        """Fraction of nets that toggle at all (constants under LSB gating
        never toggle, so this drops as accuracy drops)."""
        return float(np.count_nonzero(self.rates) / len(self.rates))


def _gated_stimulus(
    rng: np.random.Generator,
    netlist: Netlist,
    active_bits: int,
    batch: int,
) -> Dict[str, np.ndarray]:
    """One cycle of random stimulus with DVAS LSB gating on every input bus."""
    stimulus: Dict[str, np.ndarray] = {}
    for name, bus in netlist.input_buses.items():
        words = random_words(rng, batch, bus.width, signed=True)
        active = min(active_bits, bus.width)
        stimulus[name] = zero_lsbs(words, bus.width, active)
    return stimulus


#: Memo of measured reports: the exploration and both DVAS flavours ask
#: for identical (netlist, mode) activities; simulation is the expensive
#: part, so share it.  Keys use the netlist *content fingerprint* (names
#: and cell counts can collide across rebuilt designs; structure cannot)
#: plus every stimulus parameter and the requested engine.  The dict is
#: LRU-bounded so long-lived serve/explore processes don't grow without
#: limit.
_ACTIVITY_CACHE: "OrderedDict[tuple, ActivityReport]" = OrderedDict()

#: Maximum number of memoized reports (one per (design, mode, stimulus)
#: combination; a full 16-bitwidth sweep of one design uses 16 entries).
ACTIVITY_CACHE_LIMIT = 256


def clear_activity_cache() -> None:
    """Drop all memoized activity reports."""
    _ACTIVITY_CACHE.clear()


def activity_cache_size() -> int:
    """Number of currently memoized activity reports."""
    return len(_ACTIVITY_CACHE)


def measure_activity(
    netlist: Netlist,
    active_bits: int,
    cycles: int = 48,
    batch: int = 64,
    seed: int = 2017,
    warmup_cycles: int = 4,
    engine: Optional[str] = None,
) -> ActivityReport:
    """Measure per-net toggle rates of *netlist* at an accuracy mode.

    Runs a cycle-accurate simulation with fresh random (LSB-gated) input
    words every cycle, drops *warmup_cycles* cycles of reset transient,
    and averages transitions per cycle across the remaining cycles and the
    whole batch of independent streams.  Results are memoized per
    (netlist content, mode, stimulus parameters, engine); *engine* is an
    engine request as accepted by :class:`LogicSimulator` (None consults
    ``$REPRO_SIM_ENGINE``, defaulting to ``"auto"``).
    """
    if cycles < warmup_cycles + 2:
        raise ValueError("need at least warmup_cycles + 2 cycles")
    requested_engine = resolve_engine_request(engine)
    cache_key = (
        netlist.content_fingerprint(), requested_engine,
        active_bits, cycles, batch, seed, warmup_cycles,
    )
    cached = _ACTIVITY_CACHE.get(cache_key)
    if cached is not None:
        _ACTIVITY_CACHE.move_to_end(cache_key)
        return cached
    rng = np.random.default_rng(seed + 977 * active_bits)
    simulator = LogicSimulator(
        netlist, SimulationMode.CYCLE, engine=requested_engine
    )
    stimulus = [
        _gated_stimulus(rng, netlist, active_bits, batch) for _ in range(cycles)
    ]
    rates = simulator.toggle_rates(stimulus, warmup_cycles=warmup_cycles)
    report = ActivityReport(
        netlist_name=netlist.name,
        active_bits=active_bits,
        cycles=cycles - warmup_cycles,
        batch=batch,
        rates=rates,
    )
    _ACTIVITY_CACHE[cache_key] = report
    while len(_ACTIVITY_CACHE) > ACTIVITY_CACHE_LIMIT:
        _ACTIVITY_CACHE.popitem(last=False)
    return report


def activity_sweep(
    netlist: Netlist,
    bitwidths: Sequence[int],
    cycles: int = 48,
    batch: int = 64,
    seed: int = 2017,
    engine: Optional[str] = None,
) -> Dict[int, ActivityReport]:
    """Measure activity for every accuracy mode in *bitwidths*."""
    return {
        bits: measure_activity(
            netlist, bits, cycles=cycles, batch=batch, seed=seed, engine=engine
        )
        for bits in bitwidths
    }
