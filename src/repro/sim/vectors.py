"""Stimulus helpers: word/bit packing and DVAS-style LSB gating."""

from __future__ import annotations

import numpy as np


def int_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack integers into a (batch, width) boolean array, LSB first.

    Negative values are encoded in two's complement over *width* bits.
    """
    values = np.asarray(values, dtype=np.int64)
    unsigned = np.mod(values, 1 << width)
    shifts = np.arange(width, dtype=np.int64)
    return ((unsigned[:, None] >> shifts) & 1).astype(bool)


def bits_to_int(bits: np.ndarray, signed: bool = False) -> np.ndarray:
    """Unpack a (batch, width) boolean array (LSB first) into integers."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[1]
    weights = 1 << np.arange(width, dtype=np.int64)
    values = (bits * weights).sum(axis=1)
    if signed:
        sign = 1 << (width - 1)
        values = np.where(values >= sign, values - (1 << width), values)
    return values


def random_words(
    rng: np.random.Generator,
    batch: int,
    width: int,
    signed: bool = True,
) -> np.ndarray:
    """Uniform random *width*-bit words as integers."""
    raw = rng.integers(0, 1 << width, size=batch, dtype=np.int64)
    if signed:
        sign = 1 << (width - 1)
        raw = np.where(raw >= sign, raw - (1 << width), raw)
    return raw


def zero_lsbs(values: np.ndarray, width: int, active_bits: int) -> np.ndarray:
    """Clamp the lowest ``width - active_bits`` bits of *values* to zero.

    This is the DVAS accuracy knob: the operator always sees *width*-bit
    words, but only the top *active_bits* carry information.  Works for
    signed (two's complement) values: masking low bits preserves the sign.
    """
    if not 0 <= active_bits <= width:
        raise ValueError(f"active_bits={active_bits} outside 0..{width}")
    dropped = width - active_bits
    if dropped == 0:
        return np.asarray(values, dtype=np.int64)
    mask = ~np.int64((1 << dropped) - 1)
    masked = np.asarray(values, dtype=np.int64) & mask
    # Re-wrap into the signed width-bit range (masking every bit of a
    # negative value would otherwise yield -2**width instead of 0).
    half = np.int64(1 << (width - 1))
    return (masked + half) % (half * 2) - half
