"""Gate-level logic simulation, stimulus, activity and error metrics.

The simulator is two-valued and levelized, vectorized with numpy across a
batch of stimuli.  It serves three purposes in the flow:

1. functional verification of the operator generators against golden models,
2. switching-activity extraction (the "VCD annotation" of the paper's power
   analysis step),
3. application-level accuracy measurement under LSB gating.
"""

from repro.sim.simulator import (
    ENGINES,
    LogicSimulator,
    SimulationMode,
    resolve_engine_request,
)
from repro.sim.packed import PackedCompileError, PackedEngine
from repro.sim.vectors import (
    int_to_bits,
    bits_to_int,
    random_words,
    zero_lsbs,
)
from repro.sim.activity import (
    measure_activity,
    clear_activity_cache,
    ActivityReport,
)
from repro.sim.errors import error_metrics, ErrorReport
from repro.sim import golden

__all__ = [
    "ENGINES",
    "LogicSimulator",
    "SimulationMode",
    "resolve_engine_request",
    "PackedCompileError",
    "PackedEngine",
    "int_to_bits",
    "bits_to_int",
    "random_words",
    "zero_lsbs",
    "measure_activity",
    "clear_activity_cache",
    "ActivityReport",
    "error_metrics",
    "ErrorReport",
    "golden",
]
