"""Timed event-driven gate simulation for glitch-aware activity.

The levelized simulator counts one transition per net per cycle (zero-delay
semantics).  Real combinational logic glitches: unequal path delays make
nets toggle several times before settling, and multipliers are notorious
for it.  This simulator propagates transitions through per-cell *transport*
delays and counts every change, yielding glitch-inclusive toggle rates that
the dynamic power model can consume.

It is scalar (one stimulus at a time) and event-driven, so it is meant for
modest sample counts -- enough to estimate a per-net glitch factor, not to
re-verify functionality (the levelized engine does that).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.parasitics import Parasitics
from repro.sim.vectors import int_to_bits, random_words, zero_lsbs
from repro.sta.graph import compile_timing_graph


@dataclass
class GlitchReport:
    """Timed vs zero-delay switching activity."""

    netlist_name: str
    active_bits: int
    samples: int
    timed_rates: np.ndarray
    settled_rates: np.ndarray

    @property
    def glitch_factor(self) -> float:
        """Total timed transitions / total settled (zero-delay) transitions."""
        settled = self.settled_rates.sum()
        if settled == 0.0:
            return 1.0
        return float(self.timed_rates.sum() / settled)

    def glitchiest_nets(self, count: int = 5) -> List[int]:
        """Net indices with the largest excess (timed - settled) activity."""
        excess = self.timed_rates - self.settled_rates
        return list(np.argsort(excess)[::-1][:count])


class TimedEventSimulator:
    """Transport-delay event simulation of one combinational evaluation."""

    def __init__(
        self,
        netlist: Netlist,
        parasitics: Optional[Parasitics] = None,
        vdd: float = 1.0,
        fbb: bool = True,
    ):
        self.netlist = netlist
        library = netlist.library
        graph = compile_timing_graph(netlist, parasitics)
        corner = (
            library.fbb_corner(vdd) if fbb else library.nobb_corner(vdd)
        )
        factor = library.delay_factor(corner)
        # One transport delay per cell: the slowest arc through it.
        self._cell_delay = np.zeros(len(netlist.cells))
        np.maximum.at(
            self._cell_delay, graph.arc_cell, graph.arc_delay_ps * factor
        )
        self._order = netlist.topological_cells()
        # Sinks per net for event fan-out.
        self._net_sinks: List[List[int]] = [
            [pin.cell.index for pin in net.sinks if not pin.cell.is_sequential]
            for net in netlist.nets
        ]

    # -- stable evaluation -------------------------------------------------------

    def _settle(self, values: Dict[int, bool]) -> None:
        """Zero-delay evaluation in topological order (steady state)."""
        for cell in self._order:
            inputs = [values[n.index] for n in cell.input_nets]
            outputs = cell.template.evaluate(*inputs)
            for net, out in zip(cell.output_nets, outputs):
                values[net.index] = bool(np.asarray(out))

    def _apply_words(
        self, values: Dict[int, bool], words: Dict[str, int]
    ) -> None:
        for bus_name, word in words.items():
            bus = self.netlist.input_buses[bus_name]
            bits = int_to_bits(np.asarray([word]), bus.width)[0]
            for position, net in enumerate(bus.nets):
                values[net.index] = bool(bits[position])

    def propagate(
        self,
        previous_words: Dict[str, int],
        new_words: Dict[str, int],
        sequential_state: Optional[Dict[int, bool]] = None,
    ) -> np.ndarray:
        """Count per-net transitions while settling from one vector to the next.

        Returns an array of transition counts per net index (>= the 0/1 of
        zero-delay simulation; the excess is glitching).
        """
        netlist = self.netlist
        values: Dict[int, bool] = {net.index: False for net in netlist.nets}
        if sequential_state:
            values.update(sequential_state)
        self._apply_words(values, previous_words)
        self._settle(values)

        transitions = np.zeros(len(netlist.nets), dtype=np.int64)
        counter = 0
        queue: List = []
        # Inertial delay: at most one pending event per net; re-evaluating
        # a cell before its previous output pulse fired *replaces* it
        # (short pulses are swallowed, as real gates do).
        pending_version: Dict[int, int] = {}
        pending_value: Dict[int, bool] = {}

        def schedule(net_index: int, fire_at: float, value: bool) -> None:
            nonlocal counter
            if net_index in pending_version:
                if pending_value[net_index] == value:
                    return  # already heading there
                # Cancel the obsolete pulse.
                del pending_version[net_index]
                del pending_value[net_index]
                if values[net_index] == value:
                    return  # pulse fully swallowed
            elif values[net_index] == value:
                return  # no change needed
            counter += 1
            pending_version[net_index] = counter
            pending_value[net_index] = value
            heapq.heappush(queue, (fire_at, counter, net_index, value))

        # Schedule the new input values at t = 0.
        new_values = dict(values)
        self._apply_words(new_values, new_words)
        for net in netlist.nets:
            if net.is_primary_input:
                schedule(net.index, 0.0, new_values[net.index])

        while queue:
            time, version, net_index, value = heapq.heappop(queue)
            if pending_version.get(net_index) != version:
                continue  # cancelled by a later re-evaluation
            del pending_version[net_index]
            del pending_value[net_index]
            if values[net_index] == value:
                continue
            values[net_index] = value
            transitions[net_index] += 1
            for cell_index in self._net_sinks[net_index]:
                cell = netlist.cells[cell_index]
                inputs = [values[n.index] for n in cell.input_nets]
                outputs = cell.template.evaluate(*inputs)
                fire_at = time + self._cell_delay[cell_index]
                for net, out in zip(cell.output_nets, outputs):
                    schedule(net.index, fire_at, bool(np.asarray(out)))
        return transitions


def measure_glitch_activity(
    netlist: Netlist,
    active_bits: int,
    parasitics: Optional[Parasitics] = None,
    samples: int = 32,
    seed: int = 2017,
) -> GlitchReport:
    """Estimate glitch-inclusive toggle rates for one accuracy mode.

    Draws *samples* consecutive random (LSB-gated) vectors and counts the
    timed transitions between each pair, alongside the settled (zero-delay)
    transition count for the same pairs.

    Only valid for feed-forward operators (the Booth multiplier, adder,
    butterfly cores); sequential feedback would need full timed cycles.
    """
    if samples < 2:
        raise ValueError("need at least two samples")
    simulator = TimedEventSimulator(netlist, parasitics)
    rng = np.random.default_rng(seed + active_bits)

    def draw() -> Dict[str, int]:
        words = {}
        for name, bus in netlist.input_buses.items():
            raw = int(random_words(rng, 1, bus.width, signed=True)[0])
            words[name] = int(
                zero_lsbs(np.asarray([raw]), bus.width, min(active_bits, bus.width))[0]
            )
        return words

    timed = np.zeros(len(netlist.nets), dtype=np.float64)
    settled = np.zeros(len(netlist.nets), dtype=np.float64)
    previous = draw()
    for _ in range(samples - 1):
        current = draw()
        timed += simulator.propagate(previous, current)

        # Zero-delay reference: settle both vectors and diff.
        before: Dict[int, bool] = {n.index: False for n in netlist.nets}
        simulator._apply_words(before, previous)
        simulator._settle(before)
        after: Dict[int, bool] = {n.index: False for n in netlist.nets}
        simulator._apply_words(after, current)
        simulator._settle(after)
        for index in range(len(netlist.nets)):
            if before[index] != after[index]:
                settled[index] += 1
        previous = current

    pairs = samples - 1
    return GlitchReport(
        netlist_name=netlist.name,
        active_bits=active_bits,
        samples=samples,
        timed_rates=timed / pairs,
        settled_rates=settled / pairs,
    )
