"""Seeded, replayable workload-trace artifacts for the serving tier.

See :mod:`repro.traces.generator` for the trace families and the
versioned JSON schema.
"""

from repro.traces.generator import (
    TRACE_FAMILIES,
    TRACE_KIND,
    TRACE_SCHEMA,
    TraceError,
    WorkloadTrace,
    generate_trace,
    generate_suite,
    load_trace_file,
)

__all__ = [
    "TRACE_FAMILIES",
    "TRACE_KIND",
    "TRACE_SCHEMA",
    "TraceError",
    "WorkloadTrace",
    "generate_trace",
    "generate_suite",
    "load_trace_file",
]
