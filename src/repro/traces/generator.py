"""Seeded workload-trace generation.

A :class:`WorkloadTrace` is a first-class versioned artifact: a named
family, the seed and parameters that produced it, and the resulting
sequence of ``(required_bits, cycles)`` phases.  Saving and reloading a
trace replays bit-identically, and regenerating from the recorded
``family``/``seed``/``params`` reproduces the same phases -- traces are
therefore safe to check into benchmarks, ship to CI, or hand to the
offline policy trainer (:mod:`repro.serve.learned`) as reproducible
training corpora.

Four families model the workload structures the serving papers call out
("On Dynamic Precision Scaling": applications have *phases* of
different precision demand; the DNN-accelerator work: bursty MAC-heavy
traffic):

``bursty``
    A low-precision baseline with Poisson-like bursts of full-precision
    work, burst lengths geometric.
``diurnal``
    Demand follows a slow sinusoid over the trace (a day of traffic),
    quantized to the available levels with light noise.
``phase_structured``
    Long macro-phases alternate between *calm* (pure low demand) and
    *active* (mid-level demand punctured by frequent short
    full-precision spikes).  Memoryless policies thrash on the spikes
    or hold peak through the calm -- the structure a stateful policy is
    supposed to exploit.
``adversarial_flapping``
    Flapping segments alternate low/high every phase or two with
    irregular gaps sized to defeat a bounded lookahead window,
    interleaved with long calm low-only stretches that punish any
    policy that latches onto the peak mode forever.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Sequence, Tuple

#: Schema version of the serialized trace artifact.
TRACE_SCHEMA = 1

#: The ``kind`` discriminator in the JSON document.
TRACE_KIND = "repro-workload-trace"

#: Default bits levels when the caller does not name a table's modes.
DEFAULT_LEVELS: Tuple[int, ...] = (2, 4, 6, 8)


class TraceError(ValueError):
    """A trace artifact is malformed or a generation request is invalid."""


@dataclass(frozen=True)
class WorkloadTrace:
    """A replayable request trace: its provenance plus its phases."""

    family: str
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    phases: Tuple[Tuple[int, int], ...] = ()
    schema: int = TRACE_SCHEMA

    def __post_init__(self):
        for bits, cycles in self.phases:
            if bits <= 0:
                raise TraceError(f"phase bits must be positive, got {bits}")
            if cycles <= 0:
                raise TraceError(
                    f"phase cycles must be positive, got {cycles}"
                )

    def to_phases(self) -> List[Tuple[int, int]]:
        """The trace as the ``[(bits, cycles), ...]`` list replay expects."""
        return [tuple(phase) for phase in self.phases]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "kind": TRACE_KIND,
            "family": self.family,
            "seed": self.seed,
            "params": dict(self.params),
            "phases": [[bits, cycles] for bits, cycles in self.phases],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadTrace":
        if not isinstance(payload, dict):
            raise TraceError("trace document must be a JSON object")
        if payload.get("kind") != TRACE_KIND:
            raise TraceError(
                f"not a workload trace (kind={payload.get('kind')!r})"
            )
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA:
            raise TraceError(
                f"unsupported trace schema {schema!r}; "
                f"this build reads schema {TRACE_SCHEMA}"
            )
        try:
            phases = tuple(
                (int(bits), int(cycles))
                for bits, cycles in payload["phases"]
            )
            return cls(
                family=str(payload["family"]),
                seed=int(payload["seed"]),
                params=dict(payload.get("params", {})),
                phases=phases,
                schema=int(schema),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace document: {exc}") from exc

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace file {path} is not valid JSON") from exc
        return cls.from_dict(payload)


def _cycles(rng: random.Random, mean_cycles: int) -> int:
    """A per-phase cycle count jittered around the configured mean."""
    return max(1, int(rng.uniform(0.7, 1.3) * mean_cycles))


def _gen_bursty(
    rng: random.Random,
    length: int,
    levels: Sequence[int],
    mean_cycles: int,
    params: Dict[str, Any],
) -> List[Tuple[int, int]]:
    burst_rate = float(params.get("burst_rate", 0.08))
    mean_burst = max(1, int(params.get("mean_burst", 4)))
    low, high = levels[0], levels[-1]
    phases: List[Tuple[int, int]] = []
    burst_left = 0
    while len(phases) < length:
        if burst_left > 0:
            phases.append((high, _cycles(rng, mean_cycles)))
            burst_left -= 1
        elif rng.random() < burst_rate:
            burst_left = 1 + _geometric(rng, mean_burst)
        else:
            phases.append((low, _cycles(rng, mean_cycles)))
    return phases[:length]


def _geometric(rng: random.Random, mean: int) -> int:
    """A geometric draw with the given mean (support >= 0)."""
    p = 1.0 / (mean + 1.0)
    count = 0
    while rng.random() > p and count < 64:
        count += 1
    return count


def _gen_diurnal(
    rng: random.Random,
    length: int,
    levels: Sequence[int],
    mean_cycles: int,
    params: Dict[str, Any],
) -> List[Tuple[int, int]]:
    period = max(4, int(params.get("period", max(8, length // 2))))
    noise = float(params.get("noise", 0.15))
    phases: List[Tuple[int, int]] = []
    top = len(levels) - 1
    for k in range(length):
        wave = 0.5 * (1.0 - math.cos(2.0 * math.pi * k / period))
        level = wave * top + rng.gauss(0.0, noise * top)
        idx = min(top, max(0, int(round(level))))
        phases.append((levels[idx], _cycles(rng, mean_cycles)))
    return phases


def _gen_phase_structured(
    rng: random.Random,
    length: int,
    levels: Sequence[int],
    mean_cycles: int,
    params: Dict[str, Any],
) -> List[Tuple[int, int]]:
    calm_dwell = max(4, int(params.get("calm_dwell", 40)))
    active_dwell = max(4, int(params.get("active_dwell", 40)))
    spike_gap = max(2, int(params.get("spike_gap", 5)))
    low = levels[0]
    # Active segments sit on a level *far* from the spike level, so a
    # per-spike round trip is expensive relative to holding the peak --
    # the regime where memoryless selection is globally suboptimal.
    mid = levels[min(1, len(levels) - 1)]
    high = levels[-1]
    phases: List[Tuple[int, int]] = []
    active = bool(rng.random() < 0.5)
    while len(phases) < length:
        if active:
            dwell = max(2, int(rng.uniform(0.7, 1.3) * active_dwell))
            since_spike = rng.randrange(spike_gap)
            for _ in range(dwell):
                since_spike += 1
                gap = spike_gap + rng.randrange(-1, 2)
                if since_spike >= max(2, gap):
                    phases.append((high, _cycles(rng, mean_cycles)))
                    since_spike = 0
                else:
                    phases.append((mid, _cycles(rng, mean_cycles)))
        else:
            dwell = max(2, int(rng.uniform(0.7, 1.3) * calm_dwell))
            for _ in range(dwell):
                phases.append((low, _cycles(rng, mean_cycles)))
        active = not active
    return phases[:length]


def _gen_adversarial_flapping(
    rng: random.Random,
    length: int,
    levels: Sequence[int],
    mean_cycles: int,
    params: Dict[str, Any],
) -> List[Tuple[int, int]]:
    flap_dwell = max(4, int(params.get("flap_dwell", 30)))
    calm_dwell = max(4, int(params.get("calm_dwell", 50)))
    low, high = levels[0], levels[-1]
    phases: List[Tuple[int, int]] = []
    flapping = True
    while len(phases) < length:
        if flapping:
            dwell = max(2, int(rng.uniform(0.7, 1.3) * flap_dwell))
            up = bool(rng.random() < 0.5)
            produced = 0
            while produced < dwell:
                # Irregular run lengths (1-2 phases) so a bounded
                # lookahead window cannot line the pattern up.
                run = 1 + rng.randrange(2)
                bits = high if up else low
                for _ in range(run):
                    phases.append((bits, _cycles(rng, mean_cycles)))
                    produced += 1
                up = not up
        else:
            dwell = max(2, int(rng.uniform(0.7, 1.3) * calm_dwell))
            for _ in range(dwell):
                phases.append((low, _cycles(rng, mean_cycles)))
        flapping = not flapping
    return phases[:length]


_FAMILY_GENERATORS: Dict[str, Callable[..., List[Tuple[int, int]]]] = {
    "bursty": _gen_bursty,
    "diurnal": _gen_diurnal,
    "phase_structured": _gen_phase_structured,
    "adversarial_flapping": _gen_adversarial_flapping,
}

#: The trace families this build can generate, in canonical order.
TRACE_FAMILIES: Tuple[str, ...] = tuple(_FAMILY_GENERATORS)


def generate_trace(
    family: str,
    *,
    seed: int = 0,
    length: int = 200,
    bits_levels: Sequence[int] = DEFAULT_LEVELS,
    mean_cycles: int = 2000,
    **params: Any,
) -> WorkloadTrace:
    """Generate one seeded trace of the named family.

    ``bits_levels`` names the precision levels the trace draws from
    (ascending); pass the served table's mode keys so every request is
    satisfiable.  Family-specific knobs go through ``**params`` and are
    recorded in the artifact.
    """
    try:
        gen = _FAMILY_GENERATORS[family]
    except KeyError:
        raise TraceError(
            f"unknown trace family {family!r}; "
            f"choose from {list(TRACE_FAMILIES)}"
        ) from None
    levels = tuple(sorted(int(b) for b in bits_levels))
    if not levels or levels[0] <= 0:
        raise TraceError(f"bits_levels must be positive, got {bits_levels}")
    if length <= 0:
        raise TraceError(f"length must be positive, got {length}")
    if mean_cycles <= 0:
        raise TraceError(f"mean_cycles must be positive, got {mean_cycles}")
    rng = random.Random(seed)
    phases = gen(rng, length, levels, mean_cycles, params)
    recorded = {
        "length": length,
        "bits_levels": list(levels),
        "mean_cycles": mean_cycles,
        **params,
    }
    return WorkloadTrace(
        family=family, seed=seed, params=recorded, phases=tuple(phases)
    )


def generate_suite(
    *,
    seed: int = 0,
    length: int = 200,
    bits_levels: Sequence[int] = DEFAULT_LEVELS,
    mean_cycles: int = 2000,
) -> Dict[str, WorkloadTrace]:
    """One trace per family, seeds offset so families stay independent."""
    return {
        family: generate_trace(
            family,
            seed=seed + index,
            length=length,
            bits_levels=bits_levels,
            mean_cycles=mean_cycles,
        )
        for index, family in enumerate(TRACE_FAMILIES)
    }


def load_trace_file(path) -> List[Tuple[int, int]]:
    """Load phases from *path*: a trace artifact or a legacy list.

    Accepts either a :class:`WorkloadTrace` JSON document or the legacy
    ``[{"bits": ..., "cycles": ...}, ...]`` list the ``repro replay``
    command historically consumed.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace file {path} is not valid JSON") from exc
    if isinstance(payload, dict):
        return WorkloadTrace.from_dict(payload).to_phases()
    if isinstance(payload, list):
        try:
            return [
                (int(entry["bits"]), int(entry["cycles"]))
                for entry in payload
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"legacy trace list in {path} must contain "
                '{"bits", "cycles"} objects'
            ) from exc
    raise TraceError(
        f"trace file {path} must hold a trace object or a legacy list"
    )
