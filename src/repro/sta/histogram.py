"""Endpoint slack histograms (Fig. 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sta.engine import TimingReport


@dataclass
class SlackHistogram:
    """Binned endpoint slacks of one timing run.

    ``counts[i]`` endpoints fall in ``[edges[i], edges[i+1])``; bins whose
    upper edge is <= 0 hold timing violations (the red bars of Fig. 1).
    """

    edges: np.ndarray
    counts: np.ndarray
    violating: int
    total: int

    @property
    def violating_fraction(self) -> float:
        return self.violating / self.total if self.total else 0.0

    def wall_of_slack_fraction(self, window_ps: float = 50.0) -> float:
        """Fraction of endpoints with slack within *window_ps* of zero.

        The wall-of-slack phenomenon shows up as a large value here: most
        endpoints pile up just above (or at) zero slack.
        """
        centers = (self.edges[:-1] + self.edges[1:]) / 2.0
        near = np.abs(centers) <= window_ps
        return float(self.counts[near].sum() / self.total) if self.total else 0.0

    def format_text(self, width: int = 50) -> str:
        """ASCII rendering, violations marked with ``#``, met slack ``=``."""
        lines = []
        peak = max(int(self.counts.max()), 1)
        for i, count in enumerate(self.counts):
            lo, hi = self.edges[i], self.edges[i + 1]
            bar_char = "#" if hi <= 0.0 else "="
            bar = bar_char * int(round(width * count / peak))
            lines.append(f"[{lo:8.1f}, {hi:8.1f}) ps |{bar} {int(count)}")
        lines.append(
            f"violating endpoints: {self.violating}/{self.total} "
            f"({100.0 * self.violating_fraction:.1f}%)"
        )
        return "\n".join(lines)


def slack_histogram(
    report: TimingReport,
    num_bins: int = 28,
    bin_range_ps: Optional[Tuple[float, float]] = None,
) -> SlackHistogram:
    """Histogram the active endpoint slacks of a timing report."""
    slacks = report.endpoint_slack_ps[report.endpoint_active]
    if len(slacks) == 0:
        edges = np.linspace(-1.0, 1.0, num_bins + 1)
        return SlackHistogram(edges, np.zeros(num_bins), 0, 0)
    if bin_range_ps is None:
        span = max(float(np.abs(slacks).max()), 1.0)
        bin_range_ps = (-span, span)
    counts, edges = np.histogram(slacks, bins=num_bins, range=bin_range_ps)
    violating = int(np.count_nonzero(slacks < 0.0))
    return SlackHistogram(
        edges=edges, counts=counts, violating=violating, total=len(slacks)
    )
