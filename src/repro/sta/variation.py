"""Monte-Carlo timing under local Vth variation.

FDSOI's headline advantage is low local variation, but at scaled supplies
the alpha-power-law delay is steeply nonlinear in Vth, so even small sigma
matters for the aggressive corners the exploration picks (low VDD, partial
boost, near-zero slack).  This module samples per-cell Vth offsets and
reports the *timing yield* of an operating point -- the probability that a
fabricated instance still meets the clock.

A deterministic sign-off margin equivalent (the n-sigma uncertainty to add
to the clock) can be read off the sampled worst-slack distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sta.caseanalysis import CaseAnalysis
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import TimingGraph
from repro.techlib.library import Library
from repro.techlib.models import threshold_voltage


@dataclass
class YieldReport:
    """Sampled worst-slack distribution of one operating point."""

    constraint: ClockConstraint
    vdd: float
    sigma_vth: float
    worst_slack_samples_ps: np.ndarray

    @property
    def samples(self) -> int:
        return len(self.worst_slack_samples_ps)

    @property
    def timing_yield(self) -> float:
        """Fraction of instances meeting setup timing."""
        return float(np.mean(self.worst_slack_samples_ps >= 0.0))

    @property
    def mean_slack_ps(self) -> float:
        return float(np.mean(self.worst_slack_samples_ps))

    @property
    def sigma_slack_ps(self) -> float:
        return float(np.std(self.worst_slack_samples_ps))

    def margin_for_yield(self, target_yield: float = 0.9987) -> float:
        """Clock uncertainty (ps) that would reach *target_yield*.

        Uses the empirical quantile of the sampled worst slack: the margin
        is how much slack the (1 - yield) quantile instance is missing.
        """
        if not 0.0 < target_yield < 1.0:
            raise ValueError("target yield must be in (0, 1)")
        quantile = float(
            np.quantile(self.worst_slack_samples_ps, 1.0 - target_yield)
        )
        return max(0.0, -quantile)

    def summary(self) -> str:
        return (
            f"yield {self.timing_yield * 100:.1f}% over {self.samples} "
            f"samples (worst slack {self.mean_slack_ps:+.1f} "
            f"+/- {self.sigma_slack_ps:.1f} ps at sigma_vth "
            f"{self.sigma_vth * 1e3:.0f} mV)"
        )


class MonteCarloTiming:
    """Samples per-cell Vth offsets and re-runs STA."""

    def __init__(
        self,
        graph: TimingGraph,
        library: Library,
        sigma_vth: float = 0.012,
        seed: int = 1234,
    ):
        if sigma_vth < 0.0:
            raise ValueError("sigma must be non-negative")
        self.graph = graph
        self.library = library
        self.sigma_vth = sigma_vth
        self.engine = StaEngine(graph, library)
        self._rng = np.random.default_rng(seed)

    def _variation_multipliers(
        self, vdd: float, fbb_cells: np.ndarray
    ) -> np.ndarray:
        """Per-cell delay multipliers for one variation sample.

        First-order alpha-power sensitivity: a Vth offset dV multiplies the
        delay by ``(overdrive / (overdrive - dV))^alpha`` for the cell's
        bias state.
        """
        process = self.library.process
        fbb_voltage = process.fbb_voltage
        vth = np.where(
            np.asarray(fbb_cells, dtype=bool),
            threshold_voltage(fbb_voltage, vdd, process),
            threshold_voltage(0.0, vdd, process),
        )
        overdrive = np.maximum(vdd - vth, 1e-3)
        offsets = self._rng.normal(
            0.0, self.sigma_vth, size=self.graph.num_cells
        )
        # Clamp offsets so no sampled device drops below threshold.
        offsets = np.clip(offsets, -overdrive * 0.5, overdrive * 0.5)
        return np.power(overdrive / (overdrive - offsets), process.alpha)

    def analyze_yield(
        self,
        constraint: ClockConstraint,
        vdd: float,
        fbb_cells: np.ndarray,
        case: Optional[CaseAnalysis] = None,
        samples: int = 100,
    ) -> YieldReport:
        """Sample *samples* instances; return the worst-slack distribution."""
        if samples < 1:
            raise ValueError("need at least one sample")
        nominal = self.engine.cell_delay_factors(vdd, fbb_cells)
        worst = np.empty(samples)
        for index in range(samples):
            multipliers = self._variation_multipliers(vdd, fbb_cells)
            report = self.engine.analyze(
                constraint,
                vdd,
                fbb_cells,
                case=case,
                compute_required=False,
                factors=nominal * multipliers,
            )
            worst[index] = report.worst_slack_ps
        return YieldReport(
            constraint=constraint,
            vdd=vdd,
            sigma_vth=self.sigma_vth,
            worst_slack_samples_ps=worst,
        )
