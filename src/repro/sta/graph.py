"""Compilation of a placed netlist into a flat timing graph.

The graph is a set of numpy arrays over *nets* (timing nodes) and *arcs*
(cell input-pin to output-pin delays).  Base arc delays are characterized
at the library's reference corner (nominal VDD, FBB); the engines scale
them per cell by the corner factor of the cell's Vth state.

Delay model per arc through a combinational cell::

    d = d0(drive) + k(drive) * C_load + R_wire * (C_wire/2 + C_pins) / 1000

with C_load = C_wire + sum of sink pin caps (fF), R_wire in ohm, giving
picoseconds throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.parasitics import Parasitics
from repro.sta.sweep import LevelizedSchedule, compile_schedule


@dataclass
class TimingGraph:
    """Flat timing view of one placed netlist.

    All arrays are indexed by net index, arc ordinal, or cell index as
    noted.  ``levels`` orders nets topologically; ``arc_order`` sorts arcs
    by (sink-net level, sink net) so a single pass over ``arc_order`` is a
    levelized sweep *and* arcs sharing a sink form contiguous runs within
    each level -- the segment layout the ``reduceat`` sweep kernels in
    :mod:`repro.sta.sweep` consume.  ``schedule`` is the precompiled
    unfiltered sweep schedule (case-filtered variants are cached on the
    :class:`~repro.sta.caseanalysis.CaseAnalysis`).
    """

    netlist: Netlist
    num_nets: int
    num_cells: int
    # Arc arrays (one entry per cell input->output pin pair).
    arc_from: np.ndarray
    arc_to: np.ndarray
    arc_cell: np.ndarray
    arc_delay_ps: np.ndarray
    # Net levels and the level-sorted arc processing schedule.
    net_level: np.ndarray
    arc_order: np.ndarray
    level_slices: List[slice]
    # Launch points: nets that begin paths, with their base launch delay.
    launch_nets: np.ndarray
    launch_delay_ps: np.ndarray
    launch_cell: np.ndarray
    # Endpoints: D pins and primary outputs, with setup requirement.
    endpoint_nets: np.ndarray
    endpoint_setup_ps: np.ndarray
    endpoint_cell: np.ndarray
    # Per-net electrical load (for reporting; already folded into delays).
    net_load_ff: np.ndarray
    # Precompiled levelized sweep schedule (segment runs per level).
    schedule: Optional[LevelizedSchedule] = None

    def arcs_of_cell(self, cell_index: int) -> np.ndarray:
        """Ordinals of all arcs through *cell_index*."""
        return np.nonzero(self.arc_cell == cell_index)[0]


def net_pin_caps(netlist: Netlist) -> np.ndarray:
    """Total sink input-pin capacitance on every net (fF), from live drives."""
    caps = np.zeros(len(netlist.nets), dtype=np.float64)
    for net in netlist.nets:
        total = 0.0
        for pin in net.sinks:
            total += pin.cell.drive.input_cap_ff
        caps[net.index] = total
    return caps


def compile_timing_graph(
    netlist: Netlist,
    parasitics: Optional[Parasitics] = None,
) -> TimingGraph:
    """Compile *netlist* (+ optional wire parasitics) into a timing graph.

    Without parasitics, wire cap/res are zero (pre-placement "ideal wire"
    timing, which the implementation flow uses for its first sizing pass).
    """
    num_nets = len(netlist.nets)
    num_cells = len(netlist.cells)
    wire_cap = (
        parasitics.wire_cap_ff if parasitics is not None
        else np.zeros(num_nets)
    )
    wire_res = (
        parasitics.wire_res_ohm if parasitics is not None
        else np.zeros(num_nets)
    )
    pin_caps = net_pin_caps(netlist)
    net_load = wire_cap + pin_caps

    arc_from: List[int] = []
    arc_to: List[int] = []
    arc_cell: List[int] = []
    arc_delay: List[float] = []
    for cell in netlist.cells:
        if cell.is_sequential:
            continue
        drive = cell.drive
        for out_net in cell.output_nets:
            load = net_load[out_net.index]
            wire_term = (
                wire_res[out_net.index]
                * (wire_cap[out_net.index] / 2.0 + pin_caps[out_net.index])
                / 1000.0
            )
            delay = (
                drive.intrinsic_delay_ps
                + drive.load_coeff_ps_per_ff * load
                + wire_term
            )
            for in_net in cell.input_nets:
                arc_from.append(in_net.index)
                arc_to.append(out_net.index)
                arc_cell.append(cell.index)
                arc_delay.append(delay)

    arc_from_arr = np.asarray(arc_from, dtype=np.int64)
    arc_to_arr = np.asarray(arc_to, dtype=np.int64)
    arc_cell_arr = np.asarray(arc_cell, dtype=np.int64)
    arc_delay_arr = np.asarray(arc_delay, dtype=np.float64)

    # Net levels: longest arc count from any source.
    net_level = np.zeros(num_nets, dtype=np.int64)
    for cell in netlist.topological_cells():
        level = 0
        for in_net in cell.input_nets:
            level = max(level, net_level[in_net.index])
        for out_net in cell.output_nets:
            net_level[out_net.index] = max(net_level[out_net.index], level + 1)

    arc_sink_level = net_level[arc_to_arr]
    # Sort by (level, sink net): level-major for the levelized sweep,
    # sink-minor so arcs sharing a sink are contiguous segments within a
    # level.  Subsets of a sorted run stay sorted, so case-analysis
    # filtering preserves the segment property for free.
    arc_order = np.lexsort((arc_to_arr, arc_sink_level))
    sorted_levels = arc_sink_level[arc_order]
    level_slices: List[slice] = []
    if len(sorted_levels):
        boundaries = np.nonzero(np.diff(sorted_levels))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_levels)]))
        level_slices = [slice(int(s), int(e)) for s, e in zip(starts, ends)]

    # Launch points: DFF Q pins (clk-to-q) and primary inputs.  Ports are
    # assumed driven by an external register in the same clock domain, so
    # they carry one clk-to-q of input delay (unscaled by the local corner:
    # the external driver has its own supply/bias).
    external_input_delay = 0.0
    if "DFF" in netlist.library.templates:
        external_input_delay = netlist.library.template("DFF").clk_to_q_ps
    launch_nets: List[int] = []
    launch_delay: List[float] = []
    launch_cell: List[int] = []
    for cell in netlist.sequential_cells:
        launch_nets.append(cell.output_nets[0].index)
        launch_delay.append(cell.template.clk_to_q_ps)
        launch_cell.append(cell.index)
    for bus in netlist.input_buses.values():
        for net in bus.nets:
            launch_nets.append(net.index)
            launch_delay.append(external_input_delay)
            launch_cell.append(-1)

    # Endpoints: DFF D pins (setup) and primary outputs (no margin).
    endpoint_nets: List[int] = []
    endpoint_setup: List[float] = []
    endpoint_cell: List[int] = []
    for cell in netlist.sequential_cells:
        d_position = list(cell.template.inputs).index("D")
        endpoint_nets.append(cell.input_nets[d_position].index)
        endpoint_setup.append(cell.template.setup_ps)
        endpoint_cell.append(cell.index)
    for bus in netlist.output_buses.values():
        for net in bus.nets:
            endpoint_nets.append(net.index)
            endpoint_setup.append(0.0)
            endpoint_cell.append(-1)

    graph = TimingGraph(
        netlist=netlist,
        num_nets=num_nets,
        num_cells=num_cells,
        arc_from=arc_from_arr,
        arc_to=arc_to_arr,
        arc_cell=arc_cell_arr,
        arc_delay_ps=arc_delay_arr,
        net_level=net_level,
        arc_order=arc_order,
        level_slices=level_slices,
        launch_nets=np.asarray(launch_nets, dtype=np.int64),
        launch_delay_ps=np.asarray(launch_delay, dtype=np.float64),
        launch_cell=np.asarray(launch_cell, dtype=np.int64),
        endpoint_nets=np.asarray(endpoint_nets, dtype=np.int64),
        endpoint_setup_ps=np.asarray(endpoint_setup, dtype=np.float64),
        endpoint_cell=np.asarray(endpoint_cell, dtype=np.int64),
        net_load_ff=net_load,
    )
    graph.schedule = compile_schedule(graph)
    return graph
