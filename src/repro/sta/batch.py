"""Batched STA: evaluate every back-bias assignment in one sweep.

The paper's optimization phase explores all 2^NMAX assignments of
{NoBB, FBB} to the Vth domains, for every (VDD, bitwidth) pair, using STA
as a feasibility filter.  Because the timing graph is identical across
assignments -- only per-cell delay factors change -- all K = 2^NMAX
configurations can share one levelized sweep with a (nets x K) arrival
matrix.  This turns thousands of PrimeTime runs into a handful of numpy
passes and is benchmarked against the naive loop in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sta.caseanalysis import CaseAnalysis, UNKNOWN
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import NEG_INF
from repro.sta.graph import TimingGraph
from repro.sta.sweep import LevelizedSchedule, schedule_for, sweep_forward
from repro.techlib.library import Library


def all_state_configs(num_domains: int, num_states: int) -> np.ndarray:
    """All num_states^num_domains assignment vectors, shape (K, domains).

    Entry (k, d) is the state index of domain *d* in configuration *k*;
    row 0 assigns state 0 everywhere, the last row the top state.  Used by
    the multi-Vth extension (e.g. {RBB, NoBB, FBB} -> num_states = 3).
    """
    if num_domains < 0:
        raise ValueError("num_domains must be non-negative")
    if num_states < 1:
        raise ValueError("need at least one state")
    count = num_states**num_domains
    codes = np.arange(count, dtype=np.int64)
    configs = np.empty((count, num_domains), dtype=np.int64)
    for domain in range(num_domains):
        configs[:, domain] = codes % num_states
        codes = codes // num_states
    return configs


def all_bb_configs(num_domains: int) -> np.ndarray:
    """All 2^num_domains FBB assignment vectors, shape (K, num_domains).

    Row k is the binary expansion of k: domain d is FBB iff bit d of k is
    set.  Row 0 is therefore all-NoBB and row K-1 all-FBB.
    """
    if num_domains < 0:
        raise ValueError("num_domains must be non-negative")
    count = 1 << num_domains
    codes = np.arange(count, dtype=np.int64)
    bits = np.arange(num_domains, dtype=np.int64)
    return ((codes[:, None] >> bits) & 1).astype(bool)


@dataclass
class BatchTimingResult:
    """Worst setup slack of every configuration at one (VDD, case) point."""

    constraint: ClockConstraint
    vdd: float
    configs: np.ndarray
    worst_slack_ps: np.ndarray

    @property
    def feasible(self) -> np.ndarray:
        return self.worst_slack_ps >= 0.0

    @property
    def num_feasible(self) -> int:
        return int(np.count_nonzero(self.feasible))

    @property
    def filtered_fraction(self) -> float:
        """Fraction of configurations rejected by the STA filter."""
        return 1.0 - self.num_feasible / len(self.configs)


class BatchStaEngine:
    """Evaluates all BB assignments of a domain-partitioned design at once."""

    def __init__(
        self,
        graph: TimingGraph,
        library: Library,
        domains: np.ndarray,
        num_domains: int,
    ):
        domains = np.asarray(domains, dtype=np.int64)
        if domains.shape != (graph.num_cells,):
            raise ValueError(
                f"domains shape {domains.shape} != ({graph.num_cells},)"
            )
        if num_domains < 1 or (len(domains) and domains.max() >= num_domains):
            raise ValueError("domain ids out of range")
        self.graph = graph
        self.library = library
        self.domains = domains
        self.num_domains = num_domains

    def _worst_slack_sweep(
        self,
        period: float,
        factors: np.ndarray,
        schedule: LevelizedSchedule,
        case: Optional[CaseAnalysis],
        nan_guard: bool,
    ) -> np.ndarray:
        """Worst slack per configuration for one (num_cells, k) factor block.

        The single levelized launch/arrival/endpoint sweep every batched
        analysis shares: a (nets x k) float32 arrival matrix swept forward
        with the reduceat kernel, then reduced over endpoints.  With
        *nan_guard*, NaN slacks (inf - inf through an infeasible corner
        factor, possible in the multi-Vth path) are forced to -inf so the
        configuration reads as never meeting timing.
        """
        graph = self.graph
        num_k = factors.shape[1]

        arrival = np.full((graph.num_nets, num_k), NEG_INF, dtype=np.float32)
        launch_factor = np.where(
            graph.launch_cell[:, None] >= 0,
            factors[np.maximum(graph.launch_cell, 0)],
            np.float32(1.0),
        )
        launch_arrival = (
            graph.launch_delay_ps[:, None].astype(np.float32) * launch_factor
        )
        if case is None:
            arrival[graph.launch_nets] = launch_arrival
        else:
            live = case.values[graph.launch_nets] == UNKNOWN
            arrival[graph.launch_nets[live]] = launch_arrival[live]

        base_delay = graph.arc_delay_ps.astype(np.float32)
        arc_cell = graph.arc_cell

        def delay_of(arcs: np.ndarray) -> np.ndarray:
            return base_delay[arcs, None] * factors[arc_cell[arcs]]

        sweep_forward(schedule, graph.arc_from, delay_of, arrival)

        endpoint_factor = np.where(
            graph.endpoint_cell[:, None] >= 0,
            factors[np.maximum(graph.endpoint_cell, 0)],
            np.float32(1.0),
        )
        endpoint_required = (
            np.float32(period)
            - graph.endpoint_setup_ps[:, None].astype(np.float32)
            * endpoint_factor
        )
        endpoint_arrival = arrival[graph.endpoint_nets]
        slack = endpoint_required - endpoint_arrival

        if case is None:
            endpoint_active = endpoint_arrival > NEG_INF / 2
        else:
            endpoint_active = (
                case.active_endpoint_mask(graph.endpoint_nets)[:, None]
                & (endpoint_arrival > NEG_INF / 2)
            )
        slack = np.where(endpoint_active, slack, np.float32(np.inf))
        if nan_guard:
            slack = np.nan_to_num(slack, nan=-np.float32(np.inf))
        return slack.min(axis=0) if slack.shape[0] else np.full(num_k, np.inf)

    def analyze(
        self,
        constraint: ClockConstraint,
        vdd: float,
        configs: Optional[np.ndarray] = None,
        case: Optional[CaseAnalysis] = None,
    ) -> BatchTimingResult:
        """Worst slack of each BB assignment in *configs* (default: all).

        *configs* is a (K, num_domains) boolean matrix, True = FBB.
        """
        graph = self.graph
        if configs is None:
            configs = all_bb_configs(self.num_domains)
        configs = np.asarray(configs, dtype=bool)
        if configs.ndim != 2 or configs.shape[1] != self.num_domains:
            raise ValueError(
                f"configs shape {configs.shape} incompatible with "
                f"{self.num_domains} domains"
            )
        f_nobb = self.library.delay_factor(self.library.nobb_corner(vdd))
        f_fbb = self.library.delay_factor(self.library.fbb_corner(vdd))
        # (num_cells, K) delay factor of each cell under each config.
        cell_fbb = configs[:, self.domains].T
        factors = np.where(cell_fbb, np.float32(f_fbb), np.float32(f_nobb))

        worst = self._worst_slack_sweep(
            constraint.effective_period_ps,
            factors,
            schedule_for(graph, case),
            case,
            nan_guard=False,
        )

        return BatchTimingResult(
            constraint=constraint,
            vdd=vdd,
            configs=configs,
            worst_slack_ps=np.asarray(worst, dtype=np.float64),
        )

    def analyze_states(
        self,
        constraint: ClockConstraint,
        vdd: float,
        state_configs: np.ndarray,
        state_vbbs,
        case: Optional[CaseAnalysis] = None,
        chunk: int = 2048,
    ) -> BatchTimingResult:
        """Multi-Vth generalization: per-domain states beyond {NoBB, FBB}.

        *state_configs* is a (K, num_domains) integer matrix whose entries
        index *state_vbbs* (back-bias voltages, e.g. ``[-1.1, 0.0, 1.1]``
        for {RBB, NoBB, FBB}).  Configurations are evaluated in chunks of
        *chunk* to bound the arrival-matrix memory for large K.
        """
        from repro.techlib.library import Corner

        state_configs = np.asarray(state_configs, dtype=np.int64)
        if state_configs.ndim != 2 or state_configs.shape[1] != self.num_domains:
            raise ValueError(
                f"state_configs shape {state_configs.shape} incompatible "
                f"with {self.num_domains} domains"
            )
        state_vbbs = list(state_vbbs)
        if state_configs.size and not (
            0 <= state_configs.min() and state_configs.max() < len(state_vbbs)
        ):
            raise ValueError("state indices out of range")

        state_factors = np.asarray(
            [
                self.library.delay_factor(Corner(vdd, vbb))
                for vbb in state_vbbs
            ],
            dtype=np.float64,
        )
        graph = self.graph
        period = constraint.effective_period_ps
        schedule = schedule_for(graph, case)

        worst_all = np.empty(state_configs.shape[0], dtype=np.float64)
        for start in range(0, state_configs.shape[0], chunk):
            block = state_configs[start:start + chunk]
            # (num_cells, k) delay factors; infeasible states (inf factor)
            # stay inf and poison the arrival, producing the NaN slack the
            # sweep's nan_guard maps to "can never meet timing".
            factors = state_factors[block[:, self.domains]].T.astype(np.float32)
            worst_all[start:start + block.shape[0]] = self._worst_slack_sweep(
                period, factors, schedule, case, nan_guard=True
            )

        return BatchTimingResult(
            constraint=constraint,
            vdd=vdd,
            configs=state_configs,
            worst_slack_ps=worst_all,
        )
