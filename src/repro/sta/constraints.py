"""Timing constraints."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockConstraint:
    """A single synchronous clock domain.

    ``uncertainty_ps`` models jitter/skew margin subtracted from the
    period before setup checks, as an SDC ``set_clock_uncertainty`` would.
    """

    period_ps: float
    name: str = "clk"
    uncertainty_ps: float = 0.0

    def __post_init__(self):
        if self.period_ps <= 0.0:
            raise ValueError(f"period {self.period_ps} must be positive")
        if self.uncertainty_ps < 0.0 or self.uncertainty_ps >= self.period_ps:
            raise ValueError("uncertainty must be in [0, period)")

    @property
    def effective_period_ps(self) -> float:
        return self.period_ps - self.uncertainty_ps

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.period_ps
