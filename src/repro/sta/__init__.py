"""Static timing analysis (the flow's stand-in for Synopsys PrimeTime).

The netlist is compiled once into a flat arc-level timing graph
(:mod:`graph`); arrival/required/slack sweeps run on numpy arrays
(:mod:`engine`).  Two features carry the paper's methodology:

* :mod:`caseanalysis` -- constant propagation of zeroed input LSBs (through
  sequential elements, to a fixpoint) deactivates timing paths, which is
  how reduced accuracy buys timing slack;
* :mod:`batch` -- one levelized sweep evaluates *all* 2^NMAX back-bias
  assignments of a partitioned design simultaneously, which is what makes
  the paper's exhaustive exploration cheap;
* :mod:`lattice` -- the float64 whole-lattice kernel behind the
  exploration's ``--sta-engine`` selector: (combos, nets) arrival and
  required tensors, per-combo WNS / critical-endpoint / feasibility in
  one pass, bit-identical to looping the scalar engine.
"""

from repro.sta.graph import TimingGraph, compile_timing_graph
from repro.sta.engine import StaEngine, TimingReport
from repro.sta.batch import BatchStaEngine
from repro.sta.lattice import (
    LatticeStaEngine,
    LatticeTimingResult,
    resolve_sta_engine,
)
from repro.sta.caseanalysis import (
    CaseAnalysis,
    propagate_constants,
    dvas_case,
    UNKNOWN,
)
from repro.sta.constraints import ClockConstraint
from repro.sta.histogram import slack_histogram, SlackHistogram
from repro.sta.hold import HoldAnalyzer, HoldReport
from repro.sta.report_timing import report_timing, extract_path, TimingPath

__all__ = [
    "TimingGraph",
    "compile_timing_graph",
    "StaEngine",
    "TimingReport",
    "BatchStaEngine",
    "LatticeStaEngine",
    "LatticeTimingResult",
    "resolve_sta_engine",
    "CaseAnalysis",
    "propagate_constants",
    "dvas_case",
    "UNKNOWN",
    "ClockConstraint",
    "slack_histogram",
    "SlackHistogram",
    "HoldAnalyzer",
    "HoldReport",
    "report_timing",
    "extract_path",
    "TimingPath",
]
