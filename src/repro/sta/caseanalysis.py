"""Case analysis: constant propagation of gated inputs through the netlist.

Zeroing input LSBs (the DVAS accuracy knob) makes part of the logic
constant; timing paths through constant nets are *deactivated* (set (1) of
Fig. 2) and stop constraining the clock.  This module computes, for a given
accuracy mode, the constant value of every net.

Propagation is three-valued (0 / 1 / unknown) and runs *through* flip-flops
to a fixpoint: every flip-flop starts at its reset state (0) and is marked
unknown as soon as its next-state value ever differs -- i.e. a register is
considered constant only when its value is inductively invariant, which is
sound for timing (a net we call unknown merely stays pessimistically
active).  This sequential propagation is what lets the FIR's delay line
and accumulator LSBs deactivate under input gating.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.netlist.netlist import Netlist

#: Net constant codes.
ZERO = np.uint8(0)
ONE = np.uint8(1)
UNKNOWN = np.uint8(2)


@dataclass
class CaseAnalysis:
    """Result of constant propagation on one netlist.

    ``values[i]`` is 0, 1 or :data:`UNKNOWN` for net index *i*.
    """

    netlist: Netlist
    values: np.ndarray
    forced: Dict[int, bool]
    sweeps: int

    def __post_init__(self):
        self._arc_mask_cache: Dict[int, np.ndarray] = {}
        # Case-filtered sweep schedules per timing graph, memoized here
        # (not on the graph) so a short-lived case doesn't pin schedule
        # memory on a long-lived graph.  See repro.sta.sweep.schedule_for.
        self._schedule_cache: Dict[int, object] = {}

    @property
    def constant_mask(self) -> np.ndarray:
        """Boolean mask of nets with a known constant value."""
        return self.values != UNKNOWN

    def constant_fraction(self) -> float:
        return float(np.count_nonzero(self.constant_mask) / len(self.values))

    def active_arc_mask(self, graph) -> np.ndarray:
        """Arcs that still propagate transitions, per timing-graph arc.

        An arc (input pin -> output pin) is active iff both its nets are
        non-constant *and* the input can still control the output given the
        cell's constant side inputs (path sensitization).  The second
        condition is what deactivates, e.g., the select chain of a
        carry-select adder once the low blocks' carries become constant.
        """
        cached = self._arc_mask_cache.get(id(graph))
        if cached is not None and cached[0] is graph:
            return cached[1]
        values = self.values
        base = (values[graph.arc_from] == UNKNOWN) & (
            values[graph.arc_to] == UNKNOWN
        )
        # Refine with per-cell sensitization where side inputs are constant.
        mask = base.copy()
        arc_cursor = 0
        for cell in self.netlist.cells:
            if cell.is_sequential:
                continue
            num_in = len(cell.input_nets)
            num_out = len(cell.output_nets)
            num_arcs = num_in * num_out
            input_codes = tuple(int(values[n.index]) for n in cell.input_nets)
            if any(c != UNKNOWN for c in input_codes):
                sens = _sensitization_matrix(cell.template, input_codes)
                # Graph arc order per cell: for each output, all inputs.
                for out_pos in range(num_out):
                    for in_pos in range(num_in):
                        ordinal = arc_cursor + out_pos * num_in + in_pos
                        if mask[ordinal] and not sens[in_pos][out_pos]:
                            mask[ordinal] = False
            arc_cursor += num_arcs
        # Pin the graph in the entry: a dead graph's id can be recycled by
        # a new graph, which must not be served the stale mask.
        self._arc_mask_cache[id(graph)] = (graph, mask)
        return mask

    def active_endpoint_mask(self, endpoint_nets: np.ndarray) -> np.ndarray:
        """Endpoints that still capture transitions."""
        return self.values[endpoint_nets] == UNKNOWN


#: Memo of (template name, input codes) -> sensitization matrix
#: ``matrix[in_pos][out_pos]`` (True when the input can still flip the
#: output under the given constant side inputs).
_SENS_CACHE: Dict[tuple, list] = {}


def _sensitization_matrix(template, input_codes: tuple) -> list:
    """Per-(input, output) controllability under constant side inputs."""
    key = (template.name, input_codes)
    cached = _SENS_CACHE.get(key)
    if cached is not None:
        return cached
    num_in = len(template.inputs)
    num_out = len(template.outputs)
    unknown_positions = [i for i, c in enumerate(input_codes) if c == UNKNOWN]
    matrix = [[False] * num_out for _ in range(num_in)]
    for combo in itertools.product((False, True), repeat=len(unknown_positions)):
        base = [bool(c) if c != UNKNOWN else False for c in input_codes]
        for position, value in zip(unknown_positions, combo):
            base[position] = value
        outputs = tuple(
            bool(np.asarray(o)) for o in template.evaluate(*base)
        )
        for in_pos in unknown_positions:
            flipped = list(base)
            flipped[in_pos] = not flipped[in_pos]
            flipped_out = tuple(
                bool(np.asarray(o)) for o in template.evaluate(*flipped)
            )
            for out_pos in range(num_out):
                if outputs[out_pos] != flipped_out[out_pos]:
                    matrix[in_pos][out_pos] = True
    _SENS_CACHE[key] = matrix
    return matrix


#: Memo of (template name, input codes) -> output codes.  Templates are few
#: and inputs are at most three-valued triples, so this cache is tiny and
#: makes fixpoint sweeps fast.
_EVAL_CACHE: Dict[tuple, tuple] = {}


def _evaluate_three_valued(cell, input_codes) -> tuple:
    """Evaluate one cell on 3-valued inputs by enumerating unknowns."""
    key = (cell.template.name, tuple(int(c) for c in input_codes))
    cached = _EVAL_CACHE.get(key)
    if cached is not None:
        return cached
    unknown_positions = [i for i, c in enumerate(input_codes) if c == UNKNOWN]
    base = [bool(c) if c != UNKNOWN else False for c in input_codes]
    outcomes = None
    for combo in itertools.product((False, True), repeat=len(unknown_positions)):
        trial = list(base)
        for position, value in zip(unknown_positions, combo):
            trial[position] = value
        outputs = tuple(bool(np.asarray(o)) for o in cell.template.evaluate(*trial))
        if outcomes is None:
            outcomes = [{o} for o in outputs]
        else:
            for seen, o in zip(outcomes, outputs):
                seen.add(o)
    result = tuple(
        (ONE if seen == {True} else ZERO if seen == {False} else UNKNOWN)
        for seen in outcomes
    )
    _EVAL_CACHE[key] = result
    return result


def propagate_constants(
    netlist: Netlist,
    forced: Mapping[int, bool],
    max_sweeps: int = 64,
) -> CaseAnalysis:
    """Propagate *forced* net values (net index -> bool) to a fixpoint.

    Unforced primary inputs are unknown; flip-flops start at 0 and turn
    unknown (stickily) when their D value ever disagrees with their
    current value.  Raises :class:`RuntimeError` if no fixpoint is reached
    within *max_sweeps* sweeps (cannot happen on a finite monotone
    lattice unless the netlist is malformed).
    """
    values = np.full(len(netlist.nets), UNKNOWN, dtype=np.uint8)
    for net_index, value in forced.items():
        values[net_index] = ONE if value else ZERO
    if netlist.clock_net is not None:
        # The clock is a timing signal, not a logic value; for case analysis
        # it is irrelevant (no combinational cell reads it).
        values[netlist.clock_net.index] = UNKNOWN

    # Reset state: every flip-flop output starts at 0 unless forced.
    sticky_unknown = set()
    for ff in netlist.sequential_cells:
        q_index = ff.output_nets[0].index
        if q_index not in forced:
            values[q_index] = ZERO

    order = netlist.topological_cells()
    sweeps = 0
    while True:
        sweeps += 1
        if sweeps > max_sweeps:
            raise RuntimeError(
                f"case analysis did not converge in {max_sweeps} sweeps"
            )
        for cell in order:
            input_codes = [values[net.index] for net in cell.input_nets]
            outputs = _evaluate_three_valued(cell, input_codes)
            for net, code in zip(cell.output_nets, outputs):
                if net.index not in forced:
                    values[net.index] = code

        changed = False
        for ff in netlist.sequential_cells:
            q_index = ff.output_nets[0].index
            if q_index in forced or q_index in sticky_unknown:
                continue
            d_code = values[ff.input_nets[0].index]
            q_code = values[q_index]
            if d_code == q_code:
                continue
            # Next state differs from the assumed invariant: not constant.
            values[q_index] = UNKNOWN
            sticky_unknown.add(q_index)
            changed = True
        if not changed:
            break

    return CaseAnalysis(
        netlist=netlist, values=values, forced=dict(forced), sweeps=sweeps
    )


def dvas_case(
    netlist: Netlist,
    active_bits: int,
    buses: Optional[Mapping[str, int]] = None,
) -> CaseAnalysis:
    """Case analysis for a DVAS accuracy mode.

    Forces the lowest ``width - active_bits`` bits of every input bus to
    zero.  *buses* optionally overrides the active width per bus name
    (e.g. to gate only data inputs); by default every input bus is gated
    to *active_bits*.
    """
    forced: Dict[int, bool] = {}
    for name, bus in netlist.input_buses.items():
        active = buses.get(name, active_bits) if buses is not None else active_bits
        active = min(active, bus.width)
        if active < 0:
            raise ValueError(f"negative active width for bus {name!r}")
        for net in bus.nets[: bus.width - active]:
            forced[net.index] = False
    return propagate_constants(netlist, forced)
