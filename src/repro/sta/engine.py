"""Single-configuration STA: arrival / required / slack sweeps.

One :class:`StaEngine` is bound to a compiled timing graph; each call to
:meth:`StaEngine.analyze` evaluates one operating condition: a supply
voltage, a per-cell Vth state (from the domain BB assignment), a clock
constraint and optionally a case analysis whose constant nets deactivate
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sta.caseanalysis import CaseAnalysis
from repro.sta.constraints import ClockConstraint
from repro.sta.graph import TimingGraph
from repro.sta.sweep import schedule_for, sweep_backward, sweep_forward
from repro.techlib.library import Library

#: Sentinel arrival for unreachable nets.
NEG_INF = -1e30
POS_INF = 1e30


@dataclass
class TimingReport:
    """Full result of one STA run."""

    graph: TimingGraph
    constraint: ClockConstraint
    vdd: float
    arrival_ps: np.ndarray
    required_ps: np.ndarray
    endpoint_slack_ps: np.ndarray
    endpoint_active: np.ndarray

    @property
    def worst_slack_ps(self) -> float:
        active = self.endpoint_slack_ps[self.endpoint_active]
        if len(active) == 0:
            return POS_INF
        return float(active.min())

    @property
    def feasible(self) -> bool:
        return self.worst_slack_ps >= 0.0

    @property
    def critical_path_delay_ps(self) -> float:
        """Longest active launch-to-endpoint delay (data arrival)."""
        active = self.endpoint_active
        if not np.any(active):
            return 0.0
        arrivals = self.arrival_ps[self.graph.endpoint_nets[active]]
        return float(arrivals.max())

    @property
    def critical_endpoint_net(self) -> int:
        """Net id of the worst-slack active endpoint (-1 when none).

        Ties resolve to the first endpoint in endpoint order (the
        ``np.argmin`` convention), which is the per-point reference the
        lattice engine's ``critical_endpoint_net`` array is
        differential-tested against.
        """
        if not np.any(self.endpoint_active):
            return -1
        masked = np.where(self.endpoint_active, self.endpoint_slack_ps, POS_INF)
        return int(self.graph.endpoint_nets[int(np.argmin(masked))])

    def net_slack_ps(self) -> np.ndarray:
        """Per-net slack (required - arrival); +inf off any constrained path."""
        return self.required_ps - self.arrival_ps

    def cell_slack_ps(self) -> np.ndarray:
        """Worst slack across each cell's output nets (sizing uses this)."""
        slack = np.full(self.graph.num_cells, POS_INF)
        net_slack = self.net_slack_ps()
        for cell in self.graph.netlist.cells:
            worst = POS_INF
            for net in cell.output_nets:
                worst = min(worst, net_slack[net.index])
            for net in cell.input_nets:
                worst = min(worst, net_slack[net.index])
            slack[cell.index] = worst
        return slack

    def path_class_counts(self) -> dict:
        """Fig. 2's endpoint classification for this condition."""
        disabled = int(np.count_nonzero(~self.endpoint_active))
        active_slacks = self.endpoint_slack_ps[self.endpoint_active]
        return {
            "disabled": disabled,
            "positive_slack": int(np.count_nonzero(active_slacks >= 0.0)),
            "negative_slack": int(np.count_nonzero(active_slacks < 0.0)),
        }


class StaEngine:
    """Levelized STA over a compiled timing graph."""

    def __init__(self, graph: TimingGraph, library: Library):
        self.graph = graph
        self.library = library

    # -- corner factors -------------------------------------------------------

    def cell_delay_factors(self, vdd: float, fbb_cells: np.ndarray) -> np.ndarray:
        """Per-cell delay multiplier for a supply and Vth-state vector."""
        fbb_cells = np.asarray(fbb_cells, dtype=bool)
        if fbb_cells.shape != (self.graph.num_cells,):
            raise ValueError(
                f"fbb_cells shape {fbb_cells.shape} != ({self.graph.num_cells},)"
            )
        f_nobb = self.library.delay_factor(self.library.nobb_corner(vdd))
        f_fbb = self.library.delay_factor(self.library.fbb_corner(vdd))
        return np.where(fbb_cells, f_fbb, f_nobb)

    # -- analysis ----------------------------------------------------------------

    def analyze(
        self,
        constraint: ClockConstraint,
        vdd: float,
        fbb_cells: np.ndarray,
        case: Optional[CaseAnalysis] = None,
        compute_required: bool = True,
        factors: Optional[np.ndarray] = None,
    ) -> TimingReport:
        """Run setup analysis at one operating condition.

        *factors* optionally overrides the per-cell delay multipliers
        (e.g. with Monte-Carlo variation samples); by default they derive
        from (vdd, fbb_cells) via the library corner model.
        """
        graph = self.graph
        if factors is None:
            factors = self.cell_delay_factors(vdd, fbb_cells)
        else:
            factors = np.asarray(factors, dtype=float)
            if factors.shape != (graph.num_cells,):
                raise ValueError(
                    f"factors shape {factors.shape} != ({graph.num_cells},)"
                )
        arc_delay = graph.arc_delay_ps * factors[graph.arc_cell]
        schedule = schedule_for(graph, case)
        period = constraint.effective_period_ps

        def delay_of(arcs: np.ndarray) -> np.ndarray:
            return arc_delay[arcs]

        launch_factor = np.where(
            graph.launch_cell >= 0, factors[np.maximum(graph.launch_cell, 0)], 1.0
        )
        launch_arrival = graph.launch_delay_ps * launch_factor

        arrival = np.full(graph.num_nets, NEG_INF)
        if case is None:
            arrival[graph.launch_nets] = launch_arrival
        else:
            live = case.values[graph.launch_nets] == 2  # UNKNOWN
            arrival[graph.launch_nets[live]] = launch_arrival[live]

        sweep_forward(schedule, graph.arc_from, delay_of, arrival)

        endpoint_factor = np.where(
            graph.endpoint_cell >= 0,
            factors[np.maximum(graph.endpoint_cell, 0)],
            1.0,
        )
        endpoint_required = period - graph.endpoint_setup_ps * endpoint_factor
        endpoint_arrival = arrival[graph.endpoint_nets]
        endpoint_slack = endpoint_required - endpoint_arrival

        if case is None:
            endpoint_active = endpoint_arrival > NEG_INF / 2
        else:
            endpoint_active = (
                case.active_endpoint_mask(graph.endpoint_nets)
                & (endpoint_arrival > NEG_INF / 2)
            )

        required = np.full(graph.num_nets, POS_INF)
        if compute_required:
            # Endpoint seeding stays a scatter: endpoints are few, may
            # repeat a net, and are not level-segmented.
            np.minimum.at(
                required,
                graph.endpoint_nets[endpoint_active],
                endpoint_required[endpoint_active],
            )
            sweep_backward(schedule, graph.arc_to, delay_of, required)

        return TimingReport(
            graph=graph,
            constraint=constraint,
            vdd=vdd,
            arrival_ps=arrival,
            required_ps=required,
            endpoint_slack_ps=endpoint_slack,
            endpoint_active=endpoint_active,
        )

    # -- convenience ----------------------------------------------------------

    def critical_path_delay(
        self,
        vdd: float,
        fbb_cells: np.ndarray,
        case: Optional[CaseAnalysis] = None,
    ) -> float:
        """Longest active path delay (ps) without needing a constraint."""
        probe = ClockConstraint(period_ps=1e9)
        report = self.analyze(
            probe, vdd, fbb_cells, case=case, compute_required=False
        )
        return report.critical_path_delay_ps
