"""Critical-path extraction and PrimeTime-style path reports.

``report_timing`` walks back from the worst (or a chosen) endpoint through
the arcs that determined its arrival time and renders the familiar
stage-by-stage table: cell, drive, incremental delay, cumulative arrival.
Used interactively to understand *why* a configuration fails timing and by
the flow's debugging utilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sta.caseanalysis import CaseAnalysis
from repro.sta.engine import StaEngine, TimingReport


@dataclass(frozen=True)
class PathStage:
    """One hop of a timing path."""

    net_name: str
    cell_name: str
    template: str
    drive: str
    incremental_ps: float
    arrival_ps: float


@dataclass
class TimingPath:
    """A launch-to-endpoint path with its slack."""

    stages: List[PathStage]
    endpoint_net: str
    slack_ps: float
    required_ps: float

    @property
    def launch_net(self) -> str:
        return self.stages[0].net_name

    @property
    def arrival_ps(self) -> float:
        return self.stages[-1].arrival_ps

    @property
    def depth(self) -> int:
        """Number of combinational stages traversed."""
        return max(len(self.stages) - 1, 0)

    def format_text(self) -> str:
        lines = [
            f"{'net':34s} {'cell':22s} {'incr':>8s} {'arrival':>9s}",
            "-" * 76,
        ]
        for stage in self.stages:
            cell = (
                f"{stage.cell_name} ({stage.template}/{stage.drive})"
                if stage.cell_name
                else "(launch)"
            )
            lines.append(
                f"{stage.net_name:34s} {cell:22s} "
                f"{stage.incremental_ps:8.1f} {stage.arrival_ps:9.1f}"
            )
        lines.append("-" * 76)
        lines.append(
            f"data arrival {self.arrival_ps:9.1f} ps   "
            f"required {self.required_ps:9.1f} ps   "
            f"slack {self.slack_ps:+9.1f} ps "
            f"({'MET' if self.slack_ps >= 0 else 'VIOLATED'})"
        )
        return "\n".join(lines)


def extract_path(
    engine: StaEngine,
    report: TimingReport,
    vdd: float,
    fbb_cells: np.ndarray,
    endpoint_ordinal: Optional[int] = None,
    case: Optional[CaseAnalysis] = None,
) -> Optional[TimingPath]:
    """Trace the path that set the arrival of one endpoint.

    *endpoint_ordinal* indexes ``graph.endpoint_nets``; by default the
    worst active endpoint is chosen.  Returns ``None`` when no endpoint is
    active (fully gated design).
    """
    graph = engine.graph
    netlist = graph.netlist
    active = report.endpoint_active
    if not np.any(active):
        return None
    if endpoint_ordinal is None:
        slack = np.where(active, report.endpoint_slack_ps, np.inf)
        endpoint_ordinal = int(np.argmin(slack))
    elif not active[endpoint_ordinal]:
        return None

    factors = engine.cell_delay_factors(vdd, np.asarray(fbb_cells, dtype=bool))
    arc_delay = graph.arc_delay_ps * factors[graph.arc_cell]
    if case is None:
        arc_active = np.ones(len(graph.arc_from), dtype=bool)
    else:
        arc_active = case.active_arc_mask(graph)

    arrival = report.arrival_ps
    target = int(graph.endpoint_nets[endpoint_ordinal])
    stages: List[PathStage] = []
    current = target
    guard = 0
    while guard < graph.num_nets:
        guard += 1
        arcs = np.nonzero((graph.arc_to == current) & arc_active)[0]
        if len(arcs) == 0:
            break
        candidates = arrival[graph.arc_from[arcs]] + arc_delay[arcs]
        winner = arcs[int(np.argmax(candidates))]
        if abs(candidates.max() - arrival[current]) > 0.5:
            break  # arrival came from the launch init, not an arc
        cell = netlist.cells[int(graph.arc_cell[winner])]
        stages.append(
            PathStage(
                net_name=netlist.nets[current].name,
                cell_name=cell.name,
                template=cell.template.name,
                drive=cell.drive_name,
                incremental_ps=float(arc_delay[winner]),
                arrival_ps=float(arrival[current]),
            )
        )
        current = int(graph.arc_from[winner])

    stages.append(
        PathStage(
            net_name=netlist.nets[current].name,
            cell_name="",
            template="",
            drive="",
            incremental_ps=0.0,
            arrival_ps=float(arrival[current]),
        )
    )
    stages.reverse()

    required = report.constraint.effective_period_ps
    ep_cell = int(graph.endpoint_cell[endpoint_ordinal])
    if ep_cell >= 0:
        required -= graph.endpoint_setup_ps[endpoint_ordinal] * factors[ep_cell]
    return TimingPath(
        stages=stages,
        endpoint_net=netlist.nets[target].name,
        slack_ps=float(report.endpoint_slack_ps[endpoint_ordinal]),
        required_ps=float(required),
    )


def report_timing(
    engine: StaEngine,
    constraint,
    vdd: float,
    fbb_cells: np.ndarray,
    case: Optional[CaseAnalysis] = None,
    max_paths: int = 1,
) -> List[TimingPath]:
    """Analyze and return the *max_paths* worst paths (PrimeTime style)."""
    report = engine.analyze(
        constraint, vdd, fbb_cells, case=case, compute_required=False
    )
    slack = np.where(
        report.endpoint_active, report.endpoint_slack_ps, np.inf
    )
    order = np.argsort(slack, kind="stable")
    paths = []
    for ordinal in order[:max_paths]:
        if not report.endpoint_active[ordinal]:
            break
        path = extract_path(
            engine, report, vdd, fbb_cells,
            endpoint_ordinal=int(ordinal), case=case,
        )
        if path is not None:
            paths.append(path)
    return paths
