"""Hold (min-delay) analysis.

Setup analysis bounds the *longest* paths against the clock period; hold
analysis bounds the *shortest* paths against the flop hold requirement at
the same capturing edge.  Back-bias boosting makes paths faster, so a
methodology that selectively speeds regions up must re-check hold -- this
module provides the min-arrival sweep and the per-endpoint hold slack.

Hold checks are clock-period independent; they are evaluated at the
*fastest* corner the exploration may select (nominal VDD, all FBB), which
the implementation flow verifies once at sign-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sta.caseanalysis import CaseAnalysis, UNKNOWN
from repro.sta.graph import TimingGraph
from repro.sta.sweep import schedule_for, sweep_forward
from repro.techlib.library import Library

POS_INF = 1e30


@dataclass
class HoldReport:
    """Result of one min-delay analysis."""

    graph: TimingGraph
    vdd: float
    min_arrival_ps: np.ndarray
    endpoint_slack_ps: np.ndarray
    endpoint_active: np.ndarray

    @property
    def worst_slack_ps(self) -> float:
        active = self.endpoint_slack_ps[self.endpoint_active]
        if len(active) == 0:
            return POS_INF
        return float(active.min())

    @property
    def feasible(self) -> bool:
        return self.worst_slack_ps >= 0.0

    def violations(self) -> List[str]:
        """Names of endpoints violating their hold requirement."""
        names = []
        for ordinal in np.nonzero(
            self.endpoint_active & (self.endpoint_slack_ps < 0.0)
        )[0]:
            net = self.graph.netlist.nets[
                int(self.graph.endpoint_nets[ordinal])
            ]
            names.append(net.name)
        return names


class HoldAnalyzer:
    """Min-delay sweeps over a compiled timing graph."""

    def __init__(self, graph: TimingGraph, library: Library):
        self.graph = graph
        self.library = library

    def analyze(
        self,
        vdd: float,
        fbb_cells: np.ndarray,
        case: Optional[CaseAnalysis] = None,
    ) -> HoldReport:
        """Hold slack of every endpoint at one corner.

        Hold slack of a D endpoint is ``min_arrival - hold``; primary
        outputs have no hold requirement (slack +inf).
        """
        graph = self.graph
        fbb_cells = np.asarray(fbb_cells, dtype=bool)
        f_nobb = self.library.delay_factor(self.library.nobb_corner(vdd))
        f_fbb = self.library.delay_factor(self.library.fbb_corner(vdd))
        factors = np.where(fbb_cells, f_fbb, f_nobb)
        arc_delay = graph.arc_delay_ps * factors[graph.arc_cell]
        schedule = schedule_for(graph, case)

        arrival = np.full(graph.num_nets, POS_INF)
        launch_factor = np.where(
            graph.launch_cell >= 0,
            factors[np.maximum(graph.launch_cell, 0)],
            1.0,
        )
        launch_arrival = graph.launch_delay_ps * launch_factor
        if case is None:
            arrival[graph.launch_nets] = launch_arrival
        else:
            live = case.values[graph.launch_nets] == UNKNOWN
            arrival[graph.launch_nets[live]] = launch_arrival[live]

        # Hold is the min-delay sweep: same forward kernel, min reduction.
        sweep_forward(
            schedule,
            graph.arc_from,
            lambda arcs: arc_delay[arcs],
            arrival,
            reduce_op=np.minimum,
        )

        hold_template = self.library.template("DFF")
        endpoint_hold = np.where(
            graph.endpoint_cell >= 0,
            hold_template.hold_ps
            * np.where(
                graph.endpoint_cell >= 0,
                factors[np.maximum(graph.endpoint_cell, 0)],
                1.0,
            ),
            -POS_INF,  # primary outputs: no hold requirement
        )
        endpoint_arrival = arrival[graph.endpoint_nets]
        slack = endpoint_arrival - endpoint_hold

        reachable = endpoint_arrival < POS_INF / 2
        if case is None:
            endpoint_active = reachable
        else:
            endpoint_active = (
                case.active_endpoint_mask(graph.endpoint_nets) & reachable
            )

        return HoldReport(
            graph=graph,
            vdd=vdd,
            min_arrival_ps=arrival,
            endpoint_slack_ps=slack,
            endpoint_active=endpoint_active,
        )
