"""Whole-lattice batched STA: every BB combination in one tensor pass.

The exploration phase evaluates all 2^NMAX back-bias assignments of a
domain-partitioned design per (bitwidth, VDD) knob point and discards the
timing-infeasible ones (the paper reports ~75 % rejected).  The timing
graph is the *same* for every assignment -- only per-cell delay factors
``f(VDD, Vth[domain])`` change -- so the whole lattice can share one
levelized sweep: arrival and required times become ``(combos, nets)``
matrices with the BB combination stacked on a leading axis, the per-arc
delay broadcasts as a ``(combos, arcs-in-level)`` block, and the
infeasibility filter collapses to one masked reduction per knob point.

Unlike the float32 throughput engine in :mod:`repro.sta.batch`, this
kernel computes in float64 with exactly the scalar engine's operations
(same multiplies, same exact max/min reductions, same POS_INF masking),
so its per-combo WNS, feasibility mask and critical-endpoint ids are
**bit-identical** to looping :meth:`repro.sta.engine.StaEngine.analyze`
over the combinations -- the differential and hypothesis suites hold it
to that.  It also runs the backward (required-time) sweep on the same
lattice axis, which no previous batched path offered.

Engine selection mirrors the simulation engines of PR 3: exploration
callers pass ``"auto"`` / ``"lattice"`` / ``"pointwise"`` (settings
field, ``--sta-engine`` flag, or ``$REPRO_STA_ENGINE``), where
``pointwise`` is the per-combination scalar reference loop and ``auto``
resolves to the lattice kernel.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sta.caseanalysis import CaseAnalysis, UNKNOWN
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import NEG_INF, POS_INF, StaEngine
from repro.sta.graph import TimingGraph
from repro.sta.sweep import LevelizedSchedule, schedule_for
from repro.techlib.library import Library

#: Environment variable selecting the default STA engine.
STA_ENGINE_ENV_VAR = "REPRO_STA_ENGINE"

#: Valid engine requests.  ``pointwise`` loops the scalar engine over the
#: BB combinations (the reference semantics); ``lattice`` sweeps them all
#: in one tensor pass; ``auto`` resolves to ``lattice``.
STA_ENGINES = ("auto", "lattice", "pointwise")

#: Bump when the lattice kernel's numerics or result schema change; the
#: shard-cache fingerprint embeds it so stale entries miss instead of
#: being served to a differently-shaped run.
LATTICE_SCHEMA = 1


def resolve_sta_engine(engine: Optional[str]) -> str:
    """Normalize an engine request (None -> ``$REPRO_STA_ENGINE`` -> auto).

    Returns the engine that will actually run (``"lattice"`` or
    ``"pointwise"``) -- cache fingerprints key on this resolved value, so
    an explicit ``--sta-engine lattice`` and a defaulted ``auto`` share
    shard entries while lattice and pointwise runs never do.
    """
    from repro.core.config import resolve_env_choice

    requested = resolve_env_choice(
        engine, STA_ENGINE_ENV_VAR, STA_ENGINES, what="STA engine"
    )
    return "pointwise" if requested == "pointwise" else "lattice"


# -- lattice-layout sweep kernels -------------------------------------------


@dataclass
class _PaddedLevel:
    """One level of a sweep, compiled for rectangular segment reduction.

    ``ufunc.reduceat`` over ragged segments is the right tool for the
    scalar sweep's 1-D arrays but is slow on 2-D lattice blocks, so the
    lattice precompiles each level into a *padded* index matrix:
    segment *s*'s j-th arc sits at ``arc_pad[s * fanin + j]``, with
    short segments padded by repeating their last arc.  ``max``/``min``
    are exact and idempotent, so the duplicates and the changed
    reduction order cannot move a single bit relative to the ragged
    left-fold.

    ``endpoint_pad`` is ``arc_from`` (forward) / ``arc_to`` (backward)
    of ``arc_pad`` -- the gather side precomputed once.  Both are flat
    ``(segments * fanin,)`` arrays so the sweep can add into one
    preallocated 2-D scratch block.
    """

    arc_pad: np.ndarray
    endpoint_pad: np.ndarray
    segments: int
    fanin: int
    nets: np.ndarray


def _pad_levels(levels, endpoint_of: np.ndarray):
    compiled = []
    for level in levels:
        arcs = level.arcs
        starts = level.starts
        ends = np.append(starts[1:], len(arcs))
        fanin = int((ends - starts).max()) if len(starts) else 0
        offsets = np.minimum(
            np.arange(fanin)[None, :], (ends - starts - 1)[:, None]
        )
        arc_pad = arcs[starts[:, None] + offsets].reshape(-1)
        compiled.append(
            _PaddedLevel(
                arc_pad=arc_pad,
                endpoint_pad=endpoint_of[arc_pad],
                segments=len(starts),
                fanin=fanin,
                nets=level.nets,
            )
        )
    return compiled


def lattice_sweep_forward(
    levels,
    arc_delay: np.ndarray,
    arrival: np.ndarray,
    scratch: Optional[np.ndarray] = None,
) -> None:
    """Levelized arrival propagation over a ``(nets, combos)`` matrix.

    The batched twin of :func:`repro.sta.sweep.sweep_forward`: *levels*
    is the padded compilation of ``schedule.forward`` (see
    :class:`_PaddedLevel`), *arc_delay* the precomputed ``(arcs,
    combos)`` delay matrix.  Each level gathers whole C-contiguous combo
    rows into a ``(segments, fanin, combos)`` block and max-reduces the
    middle axis.  ``max`` is exact, so each combo's column computes the
    very bits the scalar sweep would.  *scratch* optionally provides the
    flat candidate buffer (at least ``max(segments * fanin) * combos``
    elements), sparing one large allocation per level.
    """
    combos = arrival.shape[1]
    for level in levels:
        slots = level.segments * level.fanin
        if scratch is not None:
            candidate = scratch[: slots * combos].reshape(slots, combos)
            np.add(
                arrival[level.endpoint_pad],
                arc_delay[level.arc_pad],
                out=candidate,
            )
        else:
            candidate = arrival[level.endpoint_pad] + arc_delay[level.arc_pad]
        best = candidate.reshape(
            level.segments, level.fanin, combos
        ).max(axis=1)
        np.maximum(arrival[level.nets], best, out=best)
        arrival[level.nets] = best


def lattice_sweep_backward(
    levels,
    arc_delay: np.ndarray,
    required: np.ndarray,
    scratch: Optional[np.ndarray] = None,
) -> None:
    """Levelized required-time propagation (min) over ``(nets, combos)``.

    *levels* is the padded compilation of ``schedule.backward``, walked
    sink-to-source.
    """
    combos = required.shape[1]
    for level in reversed(levels):
        slots = level.segments * level.fanin
        if scratch is not None:
            candidate = scratch[: slots * combos].reshape(slots, combos)
            np.subtract(
                required[level.endpoint_pad],
                arc_delay[level.arc_pad],
                out=candidate,
            )
        else:
            candidate = required[level.endpoint_pad] - arc_delay[level.arc_pad]
        best = candidate.reshape(
            level.segments, level.fanin, combos
        ).min(axis=1)
        np.minimum(required[level.nets], best, out=best)
        required[level.nets] = best


# -- results ----------------------------------------------------------------


@dataclass
class LatticeTimingResult:
    """One knob point's full BB lattice, from a single tensor pass.

    ``configs`` is the evaluated (combos, num_domains) assignment matrix;
    every other array is indexed by the same leading combo axis.
    ``critical_endpoint_net[k]`` is the net id of combo *k*'s worst-slack
    active endpoint (first one in endpoint order on ties, matching
    ``np.argmin``), or -1 when the case analysis deactivated every
    endpoint.  ``arrival_ps`` / ``required_ps`` are the ``(combos,
    nets)`` matrices, retained only when the engine was asked to keep
    them (they are the memory-heavy part of the pass).
    """

    constraint: ClockConstraint
    vdd: float
    configs: np.ndarray
    worst_slack_ps: np.ndarray
    critical_endpoint_net: np.ndarray
    arrival_ps: Optional[np.ndarray] = None
    required_ps: Optional[np.ndarray] = None

    @property
    def feasible(self) -> np.ndarray:
        """Boolean feasibility mask over the combo axis (WNS >= 0)."""
        return self.worst_slack_ps >= 0.0

    @property
    def num_feasible(self) -> int:
        return int(np.count_nonzero(self.feasible))

    @property
    def filtered_fraction(self) -> float:
        """Fraction of combinations the STA filter rejected."""
        if len(self.configs) == 0:
            return 0.0
        return 1.0 - self.num_feasible / len(self.configs)


class LatticeStaEngine:
    """Sweeps the whole BB lattice of a partitioned design in one pass."""

    def __init__(
        self,
        graph: TimingGraph,
        library: Library,
        domains: np.ndarray,
        num_domains: int,
    ):
        domains = np.asarray(domains, dtype=np.int64)
        if domains.shape != (graph.num_cells,):
            raise ValueError(
                f"domains shape {domains.shape} != ({graph.num_cells},)"
            )
        if num_domains < 0:
            raise ValueError("num_domains must be >= 0")
        if num_domains == 0:
            if len(domains) and domains.max() >= 0 and np.any(domains != 0):
                raise ValueError("domain ids out of range for 0 domains")
        elif len(domains) and domains.max() >= num_domains:
            raise ValueError("domain ids out of range")
        self.graph = graph
        self.library = library
        self.domains = domains
        self.num_domains = num_domains
        # Padded level compilations, keyed by levelized-schedule identity.
        # Case-filtered schedules are transient (they live on the
        # CaseAnalysis), so each entry pins its schedule: a freed
        # schedule's id could otherwise be recycled by a new one and be
        # served a stale compilation.
        self._padded_cache = {}
        # Reusable per-combo-width work buffers; repeated analyze calls
        # (one per knob point during exploration) would otherwise
        # mmap/munmap multi-MB temporaries every pass.
        self._scratch = {}
        # Graph-fixed launch/endpoint index plumbing.
        self._launch_clip = np.maximum(graph.launch_cell, 0)
        self._launch_external = (graph.launch_cell < 0)[:, None]
        self._endpoint_clip = np.maximum(graph.endpoint_cell, 0)
        self._endpoint_external = (graph.endpoint_cell < 0)[:, None]

    def _padded_schedule(self, schedule: LevelizedSchedule):
        cached = self._padded_cache.get(id(schedule))
        if cached is None or cached[0] is not schedule:
            forward = _pad_levels(schedule.forward, self.graph.arc_from)
            backward = _pad_levels(schedule.backward, self.graph.arc_to)
            slots = max(
                (lvl.segments * lvl.fanin for lvl in forward + backward),
                default=0,
            )
            cached = (schedule, forward, backward, slots)
            self._padded_cache[id(schedule)] = cached
        return cached[1:]

    def _scratch_for(self, num_combos: int, slots: int):
        buffers = self._scratch.get(num_combos)
        if buffers is None:
            graph = self.graph
            buffers = {
                "cell_factors": np.empty((graph.num_cells, num_combos)),
                "arc_delay": np.empty((len(graph.arc_cell), num_combos)),
                "candidate": np.empty(0),
            }
            self._scratch[num_combos] = buffers
        if buffers["candidate"].size < slots * num_combos:
            buffers["candidate"] = np.empty(slots * num_combos)
        return buffers

    # -- corner factors -----------------------------------------------------

    def factors_for(self, vdd: float, configs: np.ndarray) -> np.ndarray:
        """Per-(combo, cell) float64 delay factors of a config matrix.

        Row *k* equals ``StaEngine.cell_delay_factors(vdd, fbb_cells)``
        for combination *k* exactly (same ``np.where`` on the same
        scalars), which is the root of the engine's bit-identity.
        """
        configs = np.asarray(configs, dtype=bool)
        f_nobb = self.library.delay_factor(self.library.nobb_corner(vdd))
        f_fbb = self.library.delay_factor(self.library.fbb_corner(vdd))
        if self.num_domains == 0:
            # NMAX = 0: no bias domains, every cell at NoBB in every combo.
            return np.full(
                (configs.shape[0], self.graph.num_cells), f_nobb, dtype=float
            )
        cell_fbb = configs[:, self.domains]
        return np.where(cell_fbb, float(f_fbb), float(f_nobb))

    # -- analysis -----------------------------------------------------------

    def analyze(
        self,
        constraint: ClockConstraint,
        vdd: float,
        configs: Optional[np.ndarray] = None,
        case: Optional[CaseAnalysis] = None,
        compute_required: bool = False,
        keep_arrays: bool = False,
    ) -> LatticeTimingResult:
        """Evaluate every BB combination in *configs* in one tensor pass.

        *configs* is a (combos, num_domains) boolean matrix, True = FBB
        (default: the full 2^NMAX lattice).  ``compute_required`` also
        runs the backward sweep, yielding the ``(combos, nets)`` required
        matrix; ``keep_arrays`` retains arrival/required on the result.
        """
        from repro.sta.batch import all_bb_configs

        if configs is None:
            configs = all_bb_configs(self.num_domains)
        configs = np.asarray(configs, dtype=bool)
        if configs.ndim != 2 or configs.shape[1] != self.num_domains:
            raise ValueError(
                f"configs shape {configs.shape} incompatible with "
                f"{self.num_domains} domains"
            )
        return self.analyze_factors(
            constraint,
            self.factors_for(vdd, configs),
            vdd=vdd,
            configs=configs,
            case=case,
            compute_required=compute_required,
            keep_arrays=keep_arrays,
        )

    def analyze_factors(
        self,
        constraint: ClockConstraint,
        factors: np.ndarray,
        vdd: float = float("nan"),
        configs: Optional[np.ndarray] = None,
        case: Optional[CaseAnalysis] = None,
        compute_required: bool = False,
        keep_arrays: bool = False,
    ) -> LatticeTimingResult:
        """Lattice sweep under explicit per-(combo, cell) delay factors.

        The generalized entry point: *factors* may encode any per-domain
        Vth deltas (multi-state bias, Monte-Carlo variation, the property
        suite's random lattices), not just the binary {NoBB, FBB} corner
        pair.  Shape (combos, num_cells), float64.
        """
        graph = self.graph
        factors = np.asarray(factors, dtype=float)
        if factors.ndim != 2 or factors.shape[1] != graph.num_cells:
            raise ValueError(
                f"factors shape {factors.shape} != (combos, {graph.num_cells})"
            )
        num_combos = factors.shape[0]
        if configs is None:
            configs = np.zeros((num_combos, self.num_domains), dtype=bool)
        schedule = schedule_for(graph, case)
        forward_levels, backward_levels, slots = self._padded_schedule(
            schedule
        )
        period = constraint.effective_period_ps
        buffers = self._scratch_for(num_combos, slots)

        # All internal matrices are nets-major (nets, combos): one net's
        # combo row is then C-contiguous, so the per-level arc gathers
        # are whole-row copies rather than strided column picks.  The
        # public result arrays stay combo-major.
        cell_factors = buffers["cell_factors"]
        np.copyto(cell_factors, factors.transpose())
        # (arcs, combos): the same float64 product the scalar engine
        # forms as arc_delay_ps * factors[arc_cell], per combo --
        # computed once here instead of once per level.
        arc_delay = buffers["arc_delay"]
        np.multiply(
            graph.arc_delay_ps[:, None],
            cell_factors[graph.arc_cell],
            out=arc_delay,
        )

        # Launch seeding, broadcast over the combo axis.  External
        # launches (primary inputs) are unscaled by the local corner.
        launch_factor = cell_factors[self._launch_clip]
        np.copyto(launch_factor, 1.0, where=self._launch_external)
        launch_arrival = graph.launch_delay_ps[:, None] * launch_factor

        arrival = np.full((graph.num_nets, num_combos), NEG_INF)
        if case is None:
            arrival[graph.launch_nets] = launch_arrival
        else:
            live = case.values[graph.launch_nets] == UNKNOWN
            arrival[graph.launch_nets[live]] = launch_arrival[live]

        lattice_sweep_forward(
            forward_levels, arc_delay, arrival, buffers["candidate"]
        )

        # Endpoint bookkeeping: (endpoints, combos) blocks throughout.
        endpoint_factor = cell_factors[self._endpoint_clip]
        np.copyto(endpoint_factor, 1.0, where=self._endpoint_external)
        endpoint_required = (
            period - graph.endpoint_setup_ps[:, None] * endpoint_factor
        )
        endpoint_arrival = arrival[graph.endpoint_nets]
        endpoint_slack = endpoint_required - endpoint_arrival

        if case is None:
            endpoint_active = endpoint_arrival > NEG_INF / 2
        else:
            endpoint_active = (
                case.active_endpoint_mask(graph.endpoint_nets)[:, None]
                & (endpoint_arrival > NEG_INF / 2)
            )

        masked_slack = np.where(endpoint_active, endpoint_slack, POS_INF)
        if masked_slack.shape[0]:
            worst = masked_slack.min(axis=0)
            critical = np.argmin(masked_slack, axis=0)
            critical_net = np.where(
                endpoint_active.any(axis=0),
                graph.endpoint_nets[critical],
                -1,
            ).astype(np.int64)
            # A combo whose every endpoint is inactive has no finite
            # slack; report the scalar engine's "unconstrained" sentinel.
            worst = np.where(endpoint_active.any(axis=0), worst, POS_INF)
        else:
            worst = np.full(num_combos, POS_INF)
            critical_net = np.full(num_combos, -1, dtype=np.int64)

        required = None
        if compute_required:
            required = np.full((graph.num_nets, num_combos), POS_INF)
            # Endpoint seeding stays a scatter (endpoints are few and may
            # repeat a net), with whole combo rows as the scatter payload
            # -- exactly the scalar engine's per-combo minimum.at.
            seed = np.where(endpoint_active, endpoint_required, POS_INF)
            np.minimum.at(required, graph.endpoint_nets, seed)
            lattice_sweep_backward(
                backward_levels, arc_delay, required, buffers["candidate"]
            )

        return LatticeTimingResult(
            constraint=constraint,
            vdd=vdd,
            configs=configs,
            worst_slack_ps=worst,
            critical_endpoint_net=critical_net,
            arrival_ps=arrival.transpose() if keep_arrays else None,
            required_ps=(
                required.transpose()
                if keep_arrays and required is not None
                else None
            ),
        )

    def analyze_ladder(
        self,
        constraint: ClockConstraint,
        vdds,
        configs: Optional[np.ndarray] = None,
        case: Optional[CaseAnalysis] = None,
    ) -> list:
        """Sweep the whole (VDD, BB combination) ladder in one pass.

        VDD only enters the analysis through the per-cell delay factors,
        so the VDD rungs stack on the same leading axis as the BB
        combinations: one ``(len(vdds) * combos, nets)`` sweep replaces
        ``len(vdds)`` per-rung passes, amortizing the per-level kernel
        overhead across the ladder.  Max/min reductions are exact, so
        each rung's slice is bit-identical to its standalone
        :meth:`analyze` -- the differential wall holds it to that.

        Returns one :class:`LatticeTimingResult` per VDD, in order.
        """
        from repro.sta.batch import all_bb_configs

        if configs is None:
            configs = all_bb_configs(self.num_domains)
        configs = np.asarray(configs, dtype=bool)
        vdds = list(vdds)
        num_combos = configs.shape[0]
        if not vdds or num_combos == 0:
            return [
                LatticeTimingResult(
                    constraint=constraint,
                    vdd=vdd,
                    configs=configs,
                    worst_slack_ps=np.empty(0),
                    critical_endpoint_net=np.empty(0, dtype=np.int64),
                )
                for vdd in vdds
            ]
        factors = np.concatenate(
            [self.factors_for(vdd, configs) for vdd in vdds], axis=0
        )
        stacked = self.analyze_factors(
            constraint,
            factors,
            configs=np.tile(configs, (len(vdds), 1)),
            case=case,
        )
        results = []
        for i, vdd in enumerate(vdds):
            rung = slice(i * num_combos, (i + 1) * num_combos)
            results.append(
                LatticeTimingResult(
                    constraint=constraint,
                    vdd=vdd,
                    configs=configs,
                    worst_slack_ps=stacked.worst_slack_ps[rung],
                    critical_endpoint_net=stacked.critical_endpoint_net[rung],
                )
            )
        return results

    # -- reference loop -----------------------------------------------------

    def analyze_pointwise(
        self,
        constraint: ClockConstraint,
        vdd: float,
        configs: Optional[np.ndarray] = None,
        case: Optional[CaseAnalysis] = None,
    ) -> LatticeTimingResult:
        """The per-combination scalar reference loop (``pointwise``).

        One :meth:`StaEngine.analyze` call per BB combination -- the
        semantics the lattice pass is differential-tested against, and
        the ``--sta-engine pointwise`` execution path.
        """
        from repro.sta.batch import all_bb_configs

        if configs is None:
            configs = all_bb_configs(self.num_domains)
        configs = np.asarray(configs, dtype=bool)
        scalar = StaEngine(self.graph, self.library)
        worst = np.empty(len(configs))
        critical = np.empty(len(configs), dtype=np.int64)
        for k, config in enumerate(configs):
            if self.num_domains == 0:
                fbb_cells = np.zeros(self.graph.num_cells, dtype=bool)
            else:
                fbb_cells = config[self.domains]
            report = scalar.analyze(
                constraint, vdd, fbb_cells, case=case, compute_required=False
            )
            worst[k] = report.worst_slack_ps
            critical[k] = report.critical_endpoint_net
        return LatticeTimingResult(
            constraint=constraint,
            vdd=vdd,
            configs=configs,
            worst_slack_ps=worst,
            critical_endpoint_net=critical,
        )
