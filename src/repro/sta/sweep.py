"""Shared levelized sweep kernels for every STA engine.

All analyzers -- single-configuration setup (:mod:`repro.sta.engine`),
batched setup over back-bias configurations (:mod:`repro.sta.batch`) and
hold (:mod:`repro.sta.hold`) -- run the same schedule: seed launch-point
arrivals, propagate along timing arcs level by level, reduce per
endpoint.  Historically each engine carried its own copy of the
propagation loop built on ``np.maximum.at`` / ``np.minimum.at``
scatters; this module owns the single implementation, expressed as
``ufunc.reduceat`` segment reductions over per-level arc runs pre-sorted
by sink (forward) or source (backward) net.

``reduceat`` beats the ``.at`` scatter because the segments are
contiguous: numpy reduces each run with a tight inner loop and lands the
result with one fancy assignment per level, instead of a buffered
random-access scatter over the whole arrival array.  ``max``/``min``
are exact (no rounding) and order-independent, so the rewrite is
bit-identical to the scatter it replaced.

:class:`TimingGraph` orders ``arc_order`` by (sink level, sink net), so
the forward runs stay sorted by sink even after case-analysis filtering
drops arcs -- forward segment boundaries are one ``np.diff`` away and
never need a per-call argsort.  Backward runs (keyed by source net)
re-sort each level once at schedule-compile time; schedules are memoized
on the graph (no case) or on the :class:`CaseAnalysis` (per graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np


@dataclass(frozen=True)
class SweepLevel:
    """One level's active arcs, sorted by the sweep key, with segments.

    ``arcs[starts[i]:starts[i+1]]`` all share ``nets[i]`` as their key
    (sink net for forward sweeps, source net for backward ones).
    """

    arcs: np.ndarray
    starts: np.ndarray
    nets: np.ndarray


@dataclass(frozen=True)
class LevelizedSchedule:
    """Forward (by sink) and backward (by source) per-level segment runs.

    Both lists are in ascending level order; backward sweeps iterate
    ``reversed(backward)``.  Levels left with no active arcs after case
    filtering are dropped.
    """

    forward: List[SweepLevel]
    backward: List[SweepLevel]


def _segment_levels(
    level_arcs: List[np.ndarray], keys: np.ndarray, presorted: bool
) -> List[SweepLevel]:
    levels: List[SweepLevel] = []
    for arcs in level_arcs:
        if len(arcs) == 0:
            continue
        if not presorted:
            arcs = arcs[np.argsort(keys[arcs], kind="stable")]
        sorted_keys = keys[arcs]
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
        starts = np.concatenate(([0], boundaries)).astype(np.intp)
        levels.append(
            SweepLevel(arcs=arcs, starts=starts, nets=sorted_keys[starts])
        )
    return levels


def compile_schedule(graph, case=None) -> LevelizedSchedule:
    """Compile the (optionally case-filtered) levelized sweep schedule."""
    level_arcs = [graph.arc_order[s] for s in graph.level_slices]
    if case is not None:
        active = case.active_arc_mask(graph)
        level_arcs = [arcs[active[arcs]] for arcs in level_arcs]
    return LevelizedSchedule(
        forward=_segment_levels(level_arcs, graph.arc_to, presorted=True),
        backward=_segment_levels(level_arcs, graph.arc_from, presorted=False),
    )


def schedule_for(graph, case=None) -> LevelizedSchedule:
    """Memoized :func:`compile_schedule`.

    The unfiltered schedule lives on the graph (compiled eagerly by
    ``compile_timing_graph``); case-filtered schedules are cached on the
    :class:`CaseAnalysis` keyed by graph identity, mirroring its arc-mask
    cache.
    """
    if case is None:
        if graph.schedule is None:
            graph.schedule = compile_schedule(graph)
        return graph.schedule
    cached = case._schedule_cache.get(id(graph))
    if cached is None or cached[0] is not graph:
        # Pin the graph in the entry: ids of dead graphs can be recycled,
        # and a recycled id must not serve another graph's schedule.
        cached = (graph, compile_schedule(graph, case))
        case._schedule_cache[id(graph)] = cached
    return cached[1]


def sweep_forward(
    schedule: LevelizedSchedule,
    arc_from: np.ndarray,
    delay_of: Callable[[np.ndarray], np.ndarray],
    arrival: np.ndarray,
    reduce_op=np.maximum,
) -> None:
    """Levelized arrival propagation, in place.

    *arrival* is ``(num_nets,)`` or ``(num_nets, K)``; ``delay_of(arcs)``
    returns per-arc delays broadcastable against the gathered arrivals.
    ``reduce_op=np.minimum`` gives the hold (min-delay) sweep.
    """
    for level in schedule.forward:
        candidate = arrival[arc_from[level.arcs]] + delay_of(level.arcs)
        best = reduce_op.reduceat(candidate, level.starts, axis=0)
        arrival[level.nets] = reduce_op(arrival[level.nets], best)


def sweep_backward(
    schedule: LevelizedSchedule,
    arc_to: np.ndarray,
    delay_of: Callable[[np.ndarray], np.ndarray],
    required: np.ndarray,
) -> None:
    """Levelized required-time propagation (min), in place."""
    for level in reversed(schedule.backward):
        candidate = required[arc_to[level.arcs]] - delay_of(level.arcs)
        best = np.minimum.reduceat(candidate, level.starts, axis=0)
        required[level.nets] = np.minimum(required[level.nets], best)
