"""Slack-driven gate sizing: timing fix and power recovery.

These two passes emulate what synthesis/P&R optimization does to a real
design and are the *source* of the wall-of-slack phenomenon the paper's
method exploits (its Fig. 1, citing Kahng et al. [15]):

* :func:`timing_fix` upsizes cells on negative-slack paths until the clock
  constraint is met -- making critical paths as fast as needed;
* :func:`power_recovery` downsizes cells on positive-slack paths to save
  area/leakage -- deliberately *consuming* the slack of non-critical paths
  until nearly every endpoint sits just above zero slack.

Both iterate (size, re-extract pin loads, re-run STA) to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.parasitics import Parasitics
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine, TimingReport
from repro.sta.graph import compile_timing_graph


@dataclass
class SizingReport:
    """Outcome of a sizing pass."""

    passes: int
    resized_cells: int
    final_report: TimingReport

    @property
    def feasible(self) -> bool:
        return self.final_report.feasible


def _step_drive(cell, direction: int) -> bool:
    """Move *cell* one drive step up (+1) or down (-1); False at the end stop."""
    names = cell.template.drive_names
    position = names.index(cell.drive_name)
    target = position + direction
    if not 0 <= target < len(names):
        return False
    cell.set_drive(names[target])
    return True


def _run_sta(
    netlist: Netlist,
    parasitics: Optional[Parasitics],
    constraint: ClockConstraint,
    vdd: float,
    fbb: bool,
) -> TimingReport:
    graph = compile_timing_graph(netlist, parasitics)
    engine = StaEngine(graph, netlist.library)
    fbb_cells = np.full(graph.num_cells, fbb, dtype=bool)
    return engine.analyze(constraint, vdd, fbb_cells)


def timing_fix(
    netlist: Netlist,
    parasitics: Optional[Parasitics],
    constraint: ClockConstraint,
    vdd: Optional[float] = None,
    fbb: bool = True,
    max_passes: int = 16,
) -> SizingReport:
    """Upsize negative-slack cells until the constraint is met.

    Runs at the implementation corner (all-FBB by default, matching the
    paper's choice of closing timing with the FBB characterization).
    """
    vdd = vdd if vdd is not None else netlist.library.process.vdd_nominal
    resized_total = 0
    report = _run_sta(netlist, parasitics, constraint, vdd, fbb)
    for iteration in range(max_passes):
        if report.feasible:
            break
        slack = report.cell_slack_ps()
        resized = 0
        for cell in netlist.cells:
            if cell.is_sequential:
                continue
            if slack[cell.index] < 0.0 and _step_drive(cell, +1):
                resized += 1
        if resized == 0:
            break
        resized_total += resized
        report = _run_sta(netlist, parasitics, constraint, vdd, fbb)
    return SizingReport(
        passes=iteration + 1 if max_passes else 0,
        resized_cells=resized_total,
        final_report=report,
    )


def power_recovery(
    netlist: Netlist,
    parasitics: Optional[Parasitics],
    constraint: ClockConstraint,
    vdd: Optional[float] = None,
    fbb: bool = True,
    slack_threshold_fraction: float = 0.18,
    max_stage_delay_ps: float = 110.0,
    max_passes: int = 12,
) -> SizingReport:
    """Downsize positive-slack cells without breaking the constraint.

    Greedy with verification: each pass downsizes every cell whose slack
    exceeds ``slack_threshold_fraction * period``, provided the resulting
    stage delay stays below *max_stage_delay_ps* (the stand-in for the
    max-transition/max-capacitance electrical rules that stop real tools
    from shrinking heavily loaded drivers).  If the re-run STA shows new
    violations, a final timing-fix pass repairs them.  The net effect is
    the wall of slack: near-critical endpoint slacks compress toward zero
    while structurally short paths keep part of their headroom.
    """
    vdd = vdd if vdd is not None else netlist.library.process.vdd_nominal
    slack_threshold_ps = slack_threshold_fraction * constraint.period_ps
    resized_total = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        graph = compile_timing_graph(netlist, parasitics)
        engine = StaEngine(graph, netlist.library)
        fbb_cells = np.full(graph.num_cells, fbb, dtype=bool)
        report = engine.analyze(constraint, vdd, fbb_cells)
        slack = report.cell_slack_ps()
        resized = 0
        for cell in netlist.cells:
            if cell.is_sequential:
                continue
            if slack[cell.index] <= slack_threshold_ps:
                continue
            names = cell.template.drive_names
            position = names.index(cell.drive_name)
            if position == 0:
                continue
            smaller = cell.template.drives[names[position - 1]]
            worst_load = max(
                (graph.net_load_ff[net.index] for net in cell.output_nets),
                default=0.0,
            )
            estimated = (
                smaller.intrinsic_delay_ps
                + smaller.load_coeff_ps_per_ff * worst_load
            )
            if estimated > max_stage_delay_ps:
                continue
            cell.set_drive(smaller.name)
            resized += 1
        if resized == 0:
            break
        resized_total += resized
    # Repair any overshoot, then report the final state.
    repair = timing_fix(netlist, parasitics, constraint, vdd=vdd, fbb=fbb)
    return SizingReport(
        passes=passes,
        resized_cells=resized_total + repair.resized_cells,
        final_report=repair.final_report,
    )
