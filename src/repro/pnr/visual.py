"""ASCII floorplan renderings: domains, slack, density.

Terminal-friendly views of a placed design, the poor man's layout viewer.
Used by the examples and handy when tuning grid configurations: one glance
shows which domains hold the critical logic a given accuracy mode leaves
active.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.flow import ImplementedDesign
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine

#: Density shading ramp, light to dark.
_RAMP = " .:-=+*#%@"


def _bin_cells(
    design: ImplementedDesign, bins: Tuple[int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """(row, col) bin index of every cell on the design's floorplan."""
    rows, cols = bins
    plan = design.placement.floorplan
    xs = design.placement.positions[:, 0]
    ys = design.placement.positions[:, 1]
    col = np.clip((xs / plan.width_um * cols).astype(int), 0, cols - 1)
    row = np.clip((ys / plan.height_um * rows).astype(int), 0, rows - 1)
    return row, col


def render_domains(
    design: ImplementedDesign, bins: Tuple[int, int] = (12, 24)
) -> str:
    """Render each bin's majority Vth domain as a digit (top row = top of die)."""
    rows, cols = bins
    row, col = _bin_cells(design, bins)
    domains = design.domains
    grid = np.full((rows, cols), -1, dtype=int)
    for r in range(rows):
        for c in range(cols):
            mask = (row == r) & (col == c)
            if np.any(mask):
                values, counts = np.unique(domains[mask], return_counts=True)
                grid[r, c] = int(values[np.argmax(counts)])
    lines = []
    for r in reversed(range(rows)):
        cells = [
            "." if grid[r, c] < 0 else str(grid[r, c] % 10)
            for c in range(cols)
        ]
        lines.append("|" + "".join(cells) + "|")
    return "\n".join(lines)


def render_density(
    design: ImplementedDesign, bins: Tuple[int, int] = (12, 24)
) -> str:
    """Render placed-cell area density per bin."""
    rows, cols = bins
    row, col = _bin_cells(design, bins)
    areas = np.asarray([cell.area_um2 for cell in design.netlist.cells])
    grid = np.zeros((rows, cols))
    np.add.at(grid, (row, col), areas)
    peak = grid.max() or 1.0
    lines = []
    for r in reversed(range(rows)):
        cells = [
            _RAMP[min(int(grid[r, c] / peak * (len(_RAMP) - 1)),
                      len(_RAMP) - 1)]
            for c in range(cols)
        ]
        lines.append("|" + "".join(cells) + "|")
    return "\n".join(lines)


def render_criticality(
    design: ImplementedDesign,
    active_bits: Optional[int] = None,
    vdd: Optional[float] = None,
    bins: Tuple[int, int] = (12, 24),
    slack_fraction: float = 0.12,
) -> str:
    """Render where the timing-critical cells sit at one accuracy mode.

    ``#`` bins contain critical cells (slack below ``slack_fraction`` of
    the period), ``o`` bins hold only relaxed active logic, ``.`` bins are
    fully deactivated or empty.  This is the picture behind the whole
    methodology: boost the ``#`` regions, relax the rest.
    """
    library = design.netlist.library
    vdd = vdd if vdd is not None else library.process.vdd_nominal
    graph = design.timing_graph()
    engine = StaEngine(graph, library)
    case = (
        dvas_case(design.netlist, active_bits)
        if active_bits is not None
        else None
    )
    report = engine.analyze(
        design.constraint, vdd, np.ones(graph.num_cells, bool), case=case
    )
    slack = report.cell_slack_ps()
    threshold = design.constraint.period_ps * slack_fraction
    critical = slack < threshold
    active = slack < 1e29  # on some constrained path

    rows, cols = bins
    row, col = _bin_cells(design, bins)
    lines = []
    for r in reversed(range(rows)):
        cells = []
        for c in range(cols):
            mask = (row == r) & (col == c)
            if not np.any(mask):
                cells.append(" ")
            elif np.any(critical[mask]):
                cells.append("#")
            elif np.any(active[mask]):
                cells.append("o")
            else:
                cells.append(".")
        lines.append("|" + "".join(cells) + "|")
    return "\n".join(lines)
