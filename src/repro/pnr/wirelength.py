"""Half-perimeter wirelength (HPWL) estimation."""

from __future__ import annotations


import numpy as np

from repro.pnr.placer import PlacementResult


def half_perimeter_wirelength(points) -> float:
    """HPWL of one net from its pin coordinates."""
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def net_wirelengths(placement: PlacementResult) -> np.ndarray:
    """HPWL of every net, shape (num_nets,).

    The clock net gets zero length: clock distribution is a balanced tree
    whose wire capacitance is not modelled (its pin capacitance is still
    charged every cycle and is counted by the power analysis).
    """
    netlist = placement.netlist
    lengths = np.zeros(len(netlist.nets), dtype=float)
    for net in netlist.nets:
        if net.is_clock:
            continue
        lengths[net.index] = half_perimeter_wirelength(
            placement.position_of_net_pins(net.index)
        )
    return lengths


def total_wirelength(placement: PlacementResult) -> float:
    """Total HPWL of the placement in micrometres."""
    return float(net_wirelengths(placement).sum())
