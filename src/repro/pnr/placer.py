"""Connectivity-driven global placement with row legalization.

The placer is a light-weight analytic engine in the spirit of quadratic
placement: pin anchors on the die edges, iterative net-centroid relaxation
for global positions, then row legalization that preserves the relaxed
ordering.  It is deliberately simple -- the methodology only needs cells
that share logic to be geometrically close (so the regular-grid Vth domains
capture logic structure) and realistic wirelength-derived parasitics.

High-fanout nets (clock, tie cells) are excluded from the attraction model,
as placement tools do, otherwise they would collapse the design onto one
point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.floorplan import Floorplan, floorplan_for
from repro.pnr.legalize import legalize_rows


@dataclass
class PlacementResult:
    """Placement of one netlist on one floorplan.

    ``positions[i]`` is the (x, y) center of cell index *i*;
    ``port_positions`` maps a port net index to its fixed pin location on
    the die edge.
    """

    netlist: Netlist
    floorplan: Floorplan
    positions: np.ndarray
    port_positions: Dict[int, Tuple[float, float]]
    iterations: int

    def position_of_net_pins(self, net_index: int) -> List[Tuple[float, float]]:
        """All pin locations of a net (cell pins plus a port pin if any)."""
        net = self.netlist.nets[net_index]
        points = [
            (self.positions[pin.cell.index][0], self.positions[pin.cell.index][1])
            for pin in net.sinks
        ]
        if net.driver is not None:
            cell = net.driver.cell
            points.append((self.positions[cell.index][0], self.positions[cell.index][1]))
        if net_index in self.port_positions:
            points.append(self.port_positions[net_index])
        return points

    def write_back(self) -> None:
        """Store positions onto the cell instances (``cell.x``/``cell.y``)."""
        for cell in self.netlist.cells:
            cell.x = float(self.positions[cell.index][0])
            cell.y = float(self.positions[cell.index][1])


def _edge_port_positions(
    netlist: Netlist, floorplan: Floorplan
) -> Dict[int, Tuple[float, float]]:
    """Pin locations: input buses on the left edge, outputs on the right.

    All buses share the full edge with their bit index mapped to the same
    vertical fraction (LSB at the bottom) -- the classic *bit-sliced
    datapath* pinout.  Logic of equal significance attracts to the same
    horizontal band, so numeric significance maps onto die geometry; that
    is what lets the regular grid of Vth domains isolate the logic that
    LSB gating deactivates (and is how a floorplanner would pin out a
    datapath block in the first place).
    """
    positions: Dict[int, Tuple[float, float]] = {}
    for x_edge, buses in (
        (0.0, list(netlist.input_buses.values())),
        (floorplan.width_um, list(netlist.output_buses.values())),
    ):
        for bus in buses:
            for bit, net in enumerate(bus.nets):
                y = (bit + 0.5) * floorplan.height_um / bus.width
                positions[net.index] = (x_edge, y)
    return positions


class GlobalPlacer:
    """Runs relaxation + legalization for a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        floorplan: Optional[Floorplan] = None,
        utilization: float = 0.7,
        iterations: int = 12,
        damping: float = 0.6,
        fanout_limit: int = 32,
        seed: int = 42,
    ):
        self.netlist = netlist
        self.floorplan = floorplan or floorplan_for(
            netlist, utilization=utilization, process=netlist.library.process
        )
        self.iterations = iterations
        self.damping = damping
        self.fanout_limit = fanout_limit
        self.seed = seed

    def _attraction_nets(self) -> List[int]:
        """Nets that participate in the attraction model."""
        selected = []
        for net in self.netlist.nets:
            if net.is_clock:
                continue
            if net.driver is not None and net.driver.cell.template.name in (
                "TIELO",
                "TIEHI",
            ):
                continue
            if net.fanout > self.fanout_limit:
                continue
            selected.append(net.index)
        return selected

    def run(self) -> PlacementResult:
        """Place the netlist; also writes positions back onto the cells."""
        netlist, floorplan = self.netlist, self.floorplan
        num_cells = len(netlist.cells)
        rng = np.random.default_rng(self.seed)
        port_positions = _edge_port_positions(netlist, floorplan)

        # Flat pin arrays for the attraction nets: (net slot, cell index).
        net_indices = self._attraction_nets()
        slot_of_net = {n: i for i, n in enumerate(net_indices)}
        pin_net: List[int] = []
        pin_cell: List[int] = []
        fixed_sum = np.zeros((len(net_indices), 2))
        fixed_count = np.zeros(len(net_indices))
        for net_index in net_indices:
            net = netlist.nets[net_index]
            slot = slot_of_net[net_index]
            cells = [pin.cell.index for pin in net.sinks]
            if net.driver is not None:
                cells.append(net.driver.cell.index)
            for cell_index in set(cells):
                pin_net.append(slot)
                pin_cell.append(cell_index)
            if net_index in port_positions:
                fixed_sum[slot] += port_positions[net_index]
                fixed_count[slot] += 1
        pin_net_arr = np.asarray(pin_net, dtype=np.int64)
        pin_cell_arr = np.asarray(pin_cell, dtype=np.int64)
        pins_per_net = np.bincount(
            pin_net_arr, minlength=len(net_indices)
        ).astype(float) + fixed_count
        nets_per_cell = np.bincount(pin_cell_arr, minlength=num_cells).astype(float)
        nets_per_cell[nets_per_cell == 0] = 1.0

        positions = rng.uniform(
            low=(0.05 * floorplan.width_um, 0.05 * floorplan.height_um),
            high=(0.95 * floorplan.width_um, 0.95 * floorplan.height_um),
            size=(num_cells, 2),
        )

        for _ in range(self.iterations):
            net_sum = fixed_sum.copy()
            np.add.at(net_sum, pin_net_arr, positions[pin_cell_arr])
            centroids = net_sum / pins_per_net[:, None]
            cell_sum = np.zeros((num_cells, 2))
            np.add.at(cell_sum, pin_cell_arr, centroids[pin_net_arr])
            target = cell_sum / nets_per_cell[:, None]
            # Cells on no attraction net keep their position.
            lonely = np.bincount(pin_cell_arr, minlength=num_cells) == 0
            target[lonely] = positions[lonely]
            positions = (1 - self.damping) * positions + self.damping * target
            positions[:, 0] = np.clip(positions[:, 0], 0.0, floorplan.width_um)
            positions[:, 1] = np.clip(positions[:, 1], 0.0, floorplan.height_um)

        positions = legalize_rows(netlist, floorplan, positions)
        result = PlacementResult(
            netlist=netlist,
            floorplan=floorplan,
            positions=positions,
            port_positions=port_positions,
            iterations=self.iterations,
        )
        result.write_back()
        return result
