"""Wire parasitic extraction (the flow's SPEF equivalent).

Wire capacitance and resistance are derived from each net's half-perimeter
wirelength.  Pin capacitances are intentionally *not* stored here: they
depend on the current drive-strength assignment, which the sizing optimizer
changes, so the timing/power engines combine wire parasitics with live pin
data at analysis time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pnr.placer import PlacementResult
from repro.pnr.wirelength import net_wirelengths

#: Metal capacitance per micrometre of routed wire (fF/um), and an HPWL to
#: routed-length fudge factor folded in (HPWL underestimates routing).
WIRE_CAP_FF_PER_UM = 0.18
#: Metal resistance per micrometre (ohm/um).
WIRE_RES_OHM_PER_UM = 4.0


@dataclass
class Parasitics:
    """Per-net wire parasitics, indexed by net index."""

    wire_cap_ff: np.ndarray
    wire_res_ohm: np.ndarray

    @property
    def total_wire_cap_ff(self) -> float:
        return float(self.wire_cap_ff.sum())

    def scaled(self, factor: float) -> "Parasitics":
        """Parasitics uniformly scaled (used by what-if analyses)."""
        return Parasitics(
            wire_cap_ff=self.wire_cap_ff * factor,
            wire_res_ohm=self.wire_res_ohm * factor,
        )


def extract_parasitics(placement: PlacementResult) -> Parasitics:
    """Extract wire RC for every net of a placed design."""
    lengths = net_wirelengths(placement)
    return Parasitics(
        wire_cap_ff=lengths * WIRE_CAP_FF_PER_UM,
        wire_res_ohm=lengths * WIRE_RES_OHM_PER_UM,
    )
