"""Row legalization: snap relaxed global positions onto placement rows."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.floorplan import Floorplan


def cell_widths(netlist: Netlist) -> np.ndarray:
    """Footprint width of every cell (area / row height)."""
    row_height = netlist.library.process.cell_height_um
    return np.asarray(
        [cell.area_um2 / row_height for cell in netlist.cells], dtype=float
    )


def legalize_rows(
    netlist: Netlist,
    floorplan: Floorplan,
    positions: np.ndarray,
) -> np.ndarray:
    """Legalize *positions* onto the floorplan's rows.

    Strategy (a simplified Tetris/abacus): order cells by relaxed y and cut
    the ordering into rows so each row receives its proportional share of
    total cell width; inside a row, order by relaxed x and pack with the
    row's whitespace distributed evenly between cells.  This keeps the
    global placement's relative ordering -- which carries the logic
    structure -- while producing overlap-free, row-aligned coordinates.
    """
    num_cells = len(netlist.cells)
    if positions.shape != (num_cells, 2):
        raise ValueError(
            f"positions shape {positions.shape} != ({num_cells}, 2)"
        )
    widths = cell_widths(netlist)
    total_width = float(widths.sum())
    num_rows = floorplan.num_rows
    per_row_target = total_width / num_rows

    legal = np.empty_like(positions)
    by_y = np.argsort(positions[:, 1], kind="stable")

    # Cut against the *cumulative* width budget so per-row rounding never
    # drifts into (and overflows) the last row.
    row = 0
    assigned = 0.0
    row_members: List[List[int]] = [[] for _ in range(num_rows)]
    for cell_index in by_y:
        while (
            row < num_rows - 1
            and assigned + widths[cell_index] > (row + 1) * per_row_target
        ):
            row += 1
        row_members[row].append(int(cell_index))
        assigned += widths[cell_index]

    for row, members in enumerate(row_members):
        if not members:
            continue
        members.sort(key=lambda i: positions[i, 0])
        member_widths = widths[members]
        whitespace = max(floorplan.width_um - member_widths.sum(), 0.0)
        gap = whitespace / (len(members) + 1)
        cursor = gap
        y = floorplan.row_y(row)
        for i, cell_index in enumerate(members):
            legal[cell_index, 0] = cursor + member_widths[i] / 2.0
            legal[cell_index, 1] = y
            cursor += member_widths[i] + gap
    return legal
