"""Place & route substrate (the flow's stand-in for Cadence Innovus).

Provides what the paper's methodology actually needs from physical design:

* a row-based floorplan and a connectivity-driven global placer with row
  legalization (:mod:`floorplan`, :mod:`placer`, :mod:`legalize`),
* half-perimeter wirelength and wire RC extraction
  (:mod:`wirelength`, :mod:`parasitics`),
* the regular-grid Vth/BB domain partitioner with guardband insertion and
  incremental re-placement (:mod:`grid`, :mod:`incremental`),
* slack-driven gate sizing -- the timing-fix/power-recovery optimizer whose
  power recovery is what creates the wall of slack (:mod:`sizing`).
"""

from repro.pnr.floorplan import Floorplan
from repro.pnr.placer import GlobalPlacer, PlacementResult
from repro.pnr.wirelength import half_perimeter_wirelength, total_wirelength
from repro.pnr.grid import GridPartition, insert_domains
from repro.pnr.parasitics import Parasitics, extract_parasitics
from repro.pnr.sizing import power_recovery, timing_fix

__all__ = [
    "Floorplan",
    "GlobalPlacer",
    "PlacementResult",
    "half_perimeter_wirelength",
    "total_wirelength",
    "GridPartition",
    "insert_domains",
    "Parasitics",
    "extract_parasitics",
    "power_recovery",
    "timing_fix",
]
