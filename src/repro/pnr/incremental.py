"""Incremental placement after Vth-domain insertion.

After guardband insertion, the paper's flow runs an incremental placement
step: the tool may refine cell positions -- but every cell must stay inside
its assigned Vth domain (wells cannot straddle a guardband).  This module
implements that as domain-box-constrained net-centroid relaxation followed
by per-domain row legalization.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.pnr.floorplan import Floorplan
from repro.pnr.grid import DomainInsertionResult
from repro.pnr.placer import GlobalPlacer, PlacementResult


def domain_boxes(result: DomainInsertionResult) -> Dict[int, Tuple[float, float, float, float]]:
    """(x0, y0, x1, y1) box of every domain on the *expanded* floorplan."""
    partition = result.partition
    expanded = result.placement.floorplan
    gx, gy = result.guardband_x_um, result.guardband_y_um
    band_width = (expanded.width_um - (partition.cols - 1) * gx) / partition.cols
    band_height = (expanded.height_um - (partition.rows - 1) * gy) / partition.rows
    boxes = {}
    for row in range(partition.rows):
        for col in range(partition.cols):
            x0 = col * (band_width + gx)
            y0 = row * (band_height + gy)
            boxes[partition.domain_of(row, col)] = (
                x0, y0, x0 + band_width, y0 + band_height,
            )
    return boxes


def incremental_place(
    result: DomainInsertionResult,
    iterations: int = 8,
    damping: float = 0.5,
) -> PlacementResult:
    """Refine the post-insertion placement within domain boundaries.

    Mutates ``result.placement`` in place (positions and the cells'
    ``x``/``y``) and returns it.
    """
    placement = result.placement
    netlist = placement.netlist
    boxes = domain_boxes(result)
    helper = GlobalPlacer(netlist, floorplan=placement.floorplan)

    # Flat pin arrays, as in the global placer.
    net_indices = helper._attraction_nets()
    slot_of_net = {n: i for i, n in enumerate(net_indices)}
    pin_net: List[int] = []
    pin_cell: List[int] = []
    fixed_sum = np.zeros((len(net_indices), 2))
    fixed_count = np.zeros(len(net_indices))
    for net_index in net_indices:
        net = netlist.nets[net_index]
        slot = slot_of_net[net_index]
        cells = [pin.cell.index for pin in net.sinks]
        if net.driver is not None:
            cells.append(net.driver.cell.index)
        for cell_index in set(cells):
            pin_net.append(slot)
            pin_cell.append(cell_index)
        if net_index in placement.port_positions:
            fixed_sum[slot] += placement.port_positions[net_index]
            fixed_count[slot] += 1
    pin_net_arr = np.asarray(pin_net, dtype=np.int64)
    pin_cell_arr = np.asarray(pin_cell, dtype=np.int64)
    num_cells = len(netlist.cells)
    pins_per_net = np.bincount(
        pin_net_arr, minlength=len(net_indices)
    ).astype(float) + fixed_count
    nets_per_cell = np.bincount(pin_cell_arr, minlength=num_cells).astype(float)
    nets_per_cell[nets_per_cell == 0] = 1.0

    domain_arr = result.domains
    x_lo = np.asarray([boxes[d][0] for d in domain_arr])
    y_lo = np.asarray([boxes[d][1] for d in domain_arr])
    x_hi = np.asarray([boxes[d][2] for d in domain_arr])
    y_hi = np.asarray([boxes[d][3] for d in domain_arr])

    positions = placement.positions.copy()
    for _ in range(iterations):
        net_sum = fixed_sum.copy()
        np.add.at(net_sum, pin_net_arr, positions[pin_cell_arr])
        centroids = net_sum / pins_per_net[:, None]
        cell_sum = np.zeros((num_cells, 2))
        np.add.at(cell_sum, pin_cell_arr, centroids[pin_net_arr])
        target = cell_sum / nets_per_cell[:, None]
        lonely = np.bincount(pin_cell_arr, minlength=num_cells) == 0
        target[lonely] = positions[lonely]
        positions = (1 - damping) * positions + damping * target
        positions[:, 0] = np.clip(positions[:, 0], x_lo, x_hi)
        positions[:, 1] = np.clip(positions[:, 1], y_lo, y_hi)

    # Per-domain row legalization in local coordinates.
    row_height = placement.floorplan.row_height_um
    final = positions.copy()
    for domain, (bx0, by0, bx1, by1) in boxes.items():
        members = np.nonzero(domain_arr == domain)[0]
        if len(members) == 0:
            continue
        sub_floorplan = Floorplan(
            width_um=bx1 - bx0,
            height_um=max(row_height, (by1 - by0) // row_height * row_height),
            row_height_um=row_height,
        )
        local = positions[members] - np.asarray([bx0, by0])
        sub = _legalize_subset(netlist, sub_floorplan, members, local)
        final[members] = sub + np.asarray([bx0, by0])

    placement.positions = final
    placement.write_back()
    return placement


def _legalize_subset(
    netlist, floorplan: Floorplan, members: np.ndarray, local_positions: np.ndarray
) -> np.ndarray:
    """Row-legalize only *members* inside a sub-floorplan."""
    from repro.pnr.legalize import cell_widths

    widths = cell_widths(netlist)[members]
    num_rows = floorplan.num_rows
    per_row_target = float(widths.sum()) / num_rows

    legal = np.empty_like(local_positions)
    by_y = np.argsort(local_positions[:, 1], kind="stable")
    # Cumulative budgeting, mirroring repro.pnr.legalize.legalize_rows.
    row, assigned = 0, 0.0
    row_members: List[List[int]] = [[] for _ in range(num_rows)]
    for ordinal in by_y:
        while (
            row < num_rows - 1
            and assigned + widths[ordinal] > (row + 1) * per_row_target
        ):
            row += 1
        row_members[row].append(int(ordinal))
        assigned += widths[ordinal]
    for row, ordinals in enumerate(row_members):
        if not ordinals:
            continue
        ordinals.sort(key=lambda i: local_positions[i, 0])
        member_widths = widths[ordinals]
        whitespace = max(floorplan.width_um - member_widths.sum(), 0.0)
        gap = whitespace / (len(ordinals) + 1)
        cursor = gap
        y = floorplan.row_y(row)
        for i, ordinal in enumerate(ordinals):
            legal[ordinal, 0] = cursor + member_widths[i] / 2.0
            legal[ordinal, 1] = y
            cursor += member_widths[i] + gap
    return legal
