"""Alternative Vth-domain construction methods (the paper's future work).

The paper deliberately uses the simplest partitioning -- a regular grid --
and lists "the study of alternative Vth domains construction methods" as
future work.  This module provides the comparison point the ablation
benchmark uses:

* :func:`slack_oracle_domains` clusters cells purely by timing
  criticality at a chosen accuracy mode, ignoring geometry.  It is not
  physically implementable (the resulting "domains" are scattered across
  the die and could not share a well), so it serves as an *upper bound* on
  what a smarter partitioning could achieve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.flow import ImplementedDesign
from repro.pnr.grid import DomainInsertionResult, GridPartition
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine


def slack_oracle_domains(
    design: ImplementedDesign,
    active_bits: int,
    num_domains: int,
    vdd: Optional[float] = None,
) -> np.ndarray:
    """Assign cells to domains by slack quantile at one accuracy mode.

    Domain 0 holds the most timing-critical cells, the last domain the
    least critical ones; boosting only domain 0 then speeds up exactly the
    paths that need it.  Cells on no constrained path land in the last
    domain.
    """
    if num_domains < 1:
        raise ValueError("need at least one domain")
    library = design.netlist.library
    vdd = vdd if vdd is not None else library.process.vdd_nominal
    graph = design.timing_graph()
    engine = StaEngine(graph, library)
    case = dvas_case(design.netlist, active_bits)
    report = engine.analyze(
        design.constraint, vdd, np.ones(graph.num_cells, bool), case=case
    )
    slack = report.cell_slack_ps()

    order = np.argsort(slack, kind="stable")
    domains = np.empty(graph.num_cells, dtype=np.int64)
    bucket = max(1, graph.num_cells // num_domains)
    for rank, cell_index in enumerate(order):
        domains[cell_index] = min(rank // bucket, num_domains - 1)
    return domains


def slack_banded_partition(
    design: ImplementedDesign,
    active_bits: int,
    num_domains: int,
    vdd: Optional[float] = None,
    slack_threshold_fraction: float = 0.12,
) -> np.ndarray:
    """Contiguous horizontal bands with slack-aware boundaries.

    Unlike :func:`slack_oracle_domains`, the result is *physically
    implementable*: domains are contiguous y-bands (the same geometry as a
    ``GridPartition(num_domains, 1)``, hence the same guardband overhead),
    but the band boundaries are chosen by dynamic programming to minimize
    the number of cells inside bands that contain timing-critical logic at
    the probe accuracy -- i.e. to concentrate the must-boost cells into as
    small a boosted area as possible.
    """
    if num_domains < 1:
        raise ValueError("need at least one domain")
    library = design.netlist.library
    vdd = vdd if vdd is not None else library.process.vdd_nominal
    graph = design.timing_graph()
    engine = StaEngine(graph, library)
    case = dvas_case(design.netlist, active_bits)
    report = engine.analyze(
        design.constraint, vdd, np.ones(graph.num_cells, bool), case=case
    )
    slack = report.cell_slack_ps()
    threshold = design.constraint.period_ps * slack_threshold_fraction

    # Bucket cells into placement rows.
    row_height = design.placement.floorplan.row_height_um
    ys = design.placement.positions[:, 1]
    rows = np.floor(ys / row_height).astype(int)
    row_ids = np.unique(rows)
    num_rows = len(row_ids)
    row_of = {row: i for i, row in enumerate(row_ids)}

    row_cells = np.zeros(num_rows, dtype=np.int64)
    row_critical = np.zeros(num_rows, dtype=bool)
    for cell_index in range(graph.num_cells):
        ordinal = row_of[rows[cell_index]]
        row_cells[ordinal] += 1
        if slack[cell_index] < threshold:
            row_critical[ordinal] = True

    if num_domains >= num_rows:
        return np.asarray([row_of[rows[i]] for i in range(graph.num_cells)])

    # DP: cost of one band [i, j) = cells in it if it holds any critical
    # row, else 0.  Minimize total boosted cells over band boundaries.
    prefix_cells = np.concatenate(([0], np.cumsum(row_cells)))
    prefix_crit = np.concatenate(([0], np.cumsum(row_critical.astype(int))))

    def band_cost(i: int, j: int) -> int:
        if prefix_crit[j] - prefix_crit[i] > 0:
            return int(prefix_cells[j] - prefix_cells[i])
        return 0

    INF = 1 << 60
    cost = np.full((num_domains + 1, num_rows + 1), INF, dtype=np.int64)
    parent = np.zeros((num_domains + 1, num_rows + 1), dtype=np.int64)
    cost[0, 0] = 0
    for bands in range(1, num_domains + 1):
        for end in range(bands, num_rows + 1):
            for start in range(bands - 1, end):
                if cost[bands - 1, start] >= INF:
                    continue
                candidate = cost[bands - 1, start] + band_cost(start, end)
                if candidate < cost[bands, end]:
                    cost[bands, end] = candidate
                    parent[bands, end] = start

    # Recover boundaries.
    boundaries = [num_rows]
    position = num_rows
    for bands in range(num_domains, 0, -1):
        position = int(parent[bands, position])
        boundaries.append(position)
    boundaries.reverse()  # [0, b1, ..., num_rows]

    band_of_row = np.zeros(num_rows, dtype=np.int64)
    for band in range(num_domains):
        band_of_row[boundaries[band]:boundaries[band + 1]] = band
    return np.asarray(
        [band_of_row[row_of[rows[i]]] for i in range(graph.num_cells)]
    )


def with_custom_domains(
    design: ImplementedDesign,
    domains: np.ndarray,
    num_domains: int,
) -> ImplementedDesign:
    """A view of *design* re-partitioned into the given cell->domain map.

    Placement, parasitics and sizing are untouched; only the domain
    assignment changes (which is exactly what the ablation wants to vary).
    The synthetic partition is labelled 1 x num_domains and inherits the
    original guardband overhead so power comparisons stay apples-to-apples.
    """
    domains = np.asarray(domains, dtype=np.int64)
    if domains.shape != (len(design.netlist.cells),):
        raise ValueError("domain map must cover every cell")
    if domains.min() < 0 or domains.max() >= num_domains:
        raise ValueError("domain ids out of range")
    base_insertion = design.insertion
    insertion = DomainInsertionResult(
        placement=design.placement,
        partition=GridPartition(1, num_domains),
        domains=domains,
        area_overhead=(
            base_insertion.area_overhead if base_insertion else 0.0
        ),
        guardband_x_um=(
            base_insertion.guardband_x_um if base_insertion else 0.0
        ),
        guardband_y_um=(
            base_insertion.guardband_y_um if base_insertion else 0.0
        ),
    )
    return ImplementedDesign(
        netlist=design.netlist,
        placement=design.placement,
        parasitics=design.parasitics,
        constraint=design.constraint,
        fclk_ghz=design.fclk_ghz,
        insertion=insertion,
    )
