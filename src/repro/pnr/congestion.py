"""Routing-congestion estimation (RUDY).

The flow routes nothing, but guardband insertion visibly stretches wires,
and a user tuning grid configurations wants to see where.  RUDY (Rectangle
Uniform wire DensitY, Spindler & Johannes, DATE'07) spreads each net's
expected wirelength uniformly over its bounding box and accumulates the
demand on a bin grid -- a standard placement-stage congestion proxy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.pnr.placer import PlacementResult


@dataclass
class CongestionMap:
    """Binned routing demand of one placement."""

    demand: np.ndarray  # (rows, cols), wirelength-per-area demand
    bin_width_um: float
    bin_height_um: float

    @property
    def peak(self) -> float:
        return float(self.demand.max())

    @property
    def mean(self) -> float:
        return float(self.demand.mean())

    @property
    def peak_to_mean(self) -> float:
        mean = self.mean
        return self.peak / mean if mean > 0 else 0.0

    def hotspot(self) -> Tuple[int, int]:
        """(row, col) of the most congested bin."""
        index = int(np.argmax(self.demand))
        return divmod(index, self.demand.shape[1])

    def format_text(self, levels: str = " .:-=+*#%@") -> str:
        """ASCII heatmap, rows printed top-down like a floorplan view."""
        if self.peak <= 0:
            return "(empty map)"
        normalized = self.demand / self.peak
        lines = []
        for row in reversed(range(self.demand.shape[0])):
            cells = [
                levels[min(int(v * (len(levels) - 1)), len(levels) - 1)]
                for v in normalized[row]
            ]
            lines.append("|" + "".join(cells) + "|")
        return "\n".join(lines)


def estimate_congestion(
    placement: PlacementResult,
    bins: Tuple[int, int] = (16, 16),
) -> CongestionMap:
    """RUDY congestion of *placement* on a (rows, cols) bin grid.

    Each net contributes ``HPWL / box_area`` of demand, spread uniformly
    over its pin bounding box (degenerate boxes get one bin's footprint).
    The clock is excluded, as in wirelength/parasitics.
    """
    rows, cols = bins
    if rows < 1 or cols < 1:
        raise ValueError("need at least one bin per axis")
    plan = placement.floorplan
    bin_w = plan.width_um / cols
    bin_h = plan.height_um / rows
    demand = np.zeros((rows, cols), dtype=np.float64)

    for net in placement.netlist.nets:
        if net.is_clock:
            continue
        points = placement.position_of_net_pins(net.index)
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        hpwl = (x1 - x0) + (y1 - y0)
        if hpwl == 0.0:
            continue
        # Clip the box to at least one bin so point-like nets register.
        x1 = max(x1, x0 + bin_w * 0.5)
        y1 = max(y1, y0 + bin_h * 0.5)
        area = (x1 - x0) * (y1 - y0)
        density = hpwl / area

        col0 = int(np.clip(x0 / bin_w, 0, cols - 1))
        col1 = int(np.clip(np.ceil(x1 / bin_w), 1, cols))
        row0 = int(np.clip(y0 / bin_h, 0, rows - 1))
        row1 = int(np.clip(np.ceil(y1 / bin_h), 1, rows))
        for row in range(row0, row1):
            by0 = max(y0, row * bin_h)
            by1 = min(y1, (row + 1) * bin_h)
            if by1 <= by0:
                continue
            for col in range(col0, col1):
                bx0 = max(x0, col * bin_w)
                bx1 = min(x1, (col + 1) * bin_w)
                if bx1 <= bx0:
                    continue
                demand[row, col] += density * (bx1 - bx0) * (by1 - by0) / (
                    bin_w * bin_h
                )
    return CongestionMap(demand=demand, bin_width_um=bin_w, bin_height_um=bin_h)
