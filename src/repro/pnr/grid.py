"""Regular-grid Vth/BB domain partitioning with guardband insertion.

Implements the paper's Section III-B: the die is cut into an R x C grid of
equal rectangular Vth domains; independent back-bias wells must be separated
by guardbands (3.5 um in the paper's 28nm node), which enlarges the die and
is the method's area overhead (Table I, Fig. 6b).  Cells keep their relative
position inside their domain -- none are displaced by the partitioning
itself, which is why the grid scheme has minimal timing/power overhead at
full accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Tuple

import numpy as np

from repro.pnr.floorplan import Floorplan
from repro.pnr.placer import PlacementResult, _edge_port_positions
from repro.techlib.fdsoi import FdsoiProcess, NOMINAL_PROCESS


@dataclass(frozen=True)
class GridPartition:
    """An R x C regular grid of Vth/BB domains.

    ``rows`` counts horizontal bands (stacked vertically), ``cols`` counts
    vertical bands; the paper's "2x2" and "3x3" configurations use the
    obvious squares, and Fig. 6 also sweeps degenerate 1x2 / 2x1 / 1x3 /
    3x1 shapes.
    """

    rows: int
    cols: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"invalid grid {self.rows}x{self.cols}")

    @property
    def num_domains(self) -> int:
        return self.rows * self.cols

    @property
    def label(self) -> str:
        return f"{self.rows}x{self.cols}"

    def domain_of(self, row_band: int, col_band: int) -> int:
        """Domain id of grid coordinate (row_band, col_band)."""
        if not (0 <= row_band < self.rows and 0 <= col_band < self.cols):
            raise ValueError(
                f"band ({row_band},{col_band}) outside {self.label} grid"
            )
        return row_band * self.cols + col_band


@dataclass
class DomainInsertionResult:
    """Outcome of guardband insertion on a placed design."""

    placement: PlacementResult
    partition: GridPartition
    domains: np.ndarray
    area_overhead: float
    guardband_x_um: float
    guardband_y_um: float

    def cells_per_domain(self) -> np.ndarray:
        return np.bincount(self.domains, minlength=self.partition.num_domains)


def guardband_geometry(
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> Tuple[float, float]:
    """(vertical-strip width, horizontal-strip height) of a guardband.

    Horizontal strips must span whole placement rows, so their height is
    the guardband width rounded up to a multiple of the row height.
    """
    vertical = process.guardband_width_um
    horizontal = ceil(process.guardband_width_um / process.cell_height_um)
    return vertical, horizontal * process.cell_height_um


def area_overhead(
    floorplan: Floorplan,
    partition: GridPartition,
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> float:
    """Fractional die-area increase caused by the partition's guardbands."""
    gx, gy = guardband_geometry(process)
    new_width = floorplan.width_um + (partition.cols - 1) * gx
    new_height = floorplan.height_um + (partition.rows - 1) * gy
    return new_width * new_height / floorplan.area_um2 - 1.0


def assign_domains(
    placement: PlacementResult, partition: GridPartition
) -> np.ndarray:
    """Map every cell to its grid domain based on its placed position."""
    floorplan = placement.floorplan
    xs = placement.positions[:, 0]
    ys = placement.positions[:, 1]
    col_band = np.minimum(
        (xs / (floorplan.width_um / partition.cols)).astype(int),
        partition.cols - 1,
    )
    row_band = np.minimum(
        (ys / (floorplan.height_um / partition.rows)).astype(int),
        partition.rows - 1,
    )
    return row_band * partition.cols + col_band


def insert_domains(
    placement: PlacementResult,
    partition: GridPartition,
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> DomainInsertionResult:
    """Insert guardbands for *partition* into a placed design.

    Cells are assigned to domains geometrically and then rigidly translated
    by the guardbands separating their domain from the die origin.  The
    result is a new :class:`PlacementResult` on the enlarged floorplan
    (with edge port pins re-spread), leaving the input placement untouched.
    Domain ids are also written onto the cell instances.
    """
    gx, gy = guardband_geometry(process)
    domains = assign_domains(placement, partition)
    floorplan = placement.floorplan

    new_floorplan = Floorplan(
        width_um=floorplan.width_um + (partition.cols - 1) * gx,
        height_um=floorplan.height_um + (partition.rows - 1) * gy,
        row_height_um=floorplan.row_height_um,
    )

    col_band = domains % partition.cols
    row_band = domains // partition.cols
    new_positions = placement.positions.copy()
    new_positions[:, 0] += col_band * gx
    new_positions[:, 1] += row_band * gy

    new_placement = PlacementResult(
        netlist=placement.netlist,
        floorplan=new_floorplan,
        positions=new_positions,
        port_positions=_edge_port_positions(placement.netlist, new_floorplan),
        iterations=placement.iterations,
    )
    new_placement.write_back()
    for cell, domain in zip(placement.netlist.cells, domains):
        cell.domain = int(domain)

    return DomainInsertionResult(
        placement=new_placement,
        partition=partition,
        domains=domains,
        area_overhead=area_overhead(floorplan, partition, process),
        guardband_x_um=gx,
        guardband_y_um=gy,
    )
