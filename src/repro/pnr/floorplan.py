"""Row-based floorplanning."""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt

from repro.netlist.netlist import Netlist
from repro.techlib.fdsoi import FdsoiProcess, NOMINAL_PROCESS


@dataclass(frozen=True)
class Floorplan:
    """A rectangular standard-cell die made of full-width placement rows."""

    width_um: float
    height_um: float
    row_height_um: float

    @property
    def num_rows(self) -> int:
        return int(self.height_um / self.row_height_um)

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    def row_y(self, row: int) -> float:
        """Center y-coordinate of *row*."""
        if not 0 <= row < self.num_rows:
            raise ValueError(f"row {row} outside 0..{self.num_rows - 1}")
        return (row + 0.5) * self.row_height_um

    def clamp(self, x: float, y: float) -> tuple:
        """Clamp a point into the die."""
        return (
            min(max(x, 0.0), self.width_um),
            min(max(y, 0.0), self.height_um),
        )


def floorplan_for(
    netlist: Netlist,
    utilization: float = 0.7,
    aspect_ratio: float = 1.0,
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> Floorplan:
    """Size a die for *netlist* at the given placement *utilization*.

    The die is sized so ``cell_area / die_area == utilization``, shaped to
    *aspect_ratio* (height/width) and quantized to whole rows.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization {utilization} outside (0, 1]")
    if aspect_ratio <= 0.0:
        raise ValueError("aspect_ratio must be positive")
    cell_area = netlist.cell_area_um2()
    if cell_area <= 0.0:
        raise ValueError(f"netlist {netlist.name!r} has no placeable area")
    die_area = cell_area / utilization
    width = sqrt(die_area / aspect_ratio)
    height = die_area / width
    rows = max(1, ceil(height / process.cell_height_um))
    return Floorplan(
        width_um=width,
        height_um=rows * process.cell_height_um,
        row_height_um=process.cell_height_um,
    )
