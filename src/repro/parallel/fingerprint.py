"""Content addressing for cached exploration shards.

A shard result is valid only for the exact inputs that produced it, so its
cache key is a SHA-256 digest over everything those numbers depend on:

* the design -- netlist structure, drive strengths, domain map, wire
  parasitics, clock constraint and library/process parameters;
* the stimulus settings (activity cycles/batch/seed);
* the explored BB configuration matrix;
* the shard's own (bitwidths, VDDs) slice of the knob grid.

Names (netlist, cell, net) are deliberately *excluded*: the engines are
purely index-based, so two structurally identical designs built by
different factory invocations produce the same numbers and may share
cache entries.  Execution knobs (worker count, cache location) are
excluded too -- they can never change results.

All dict-shaped inputs are serialized with :func:`canonical_json`
(sorted keys, fixed separators), so key stability never depends on dict
insertion order or ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Dict

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ExplorationSettings
    from repro.core.flow import ImplementedDesign
    from repro.parallel.shards import Shard

#: Bump when the fingerprint recipe or shard payload schema changes;
#: old entries then miss instead of being misinterpreted.  Schema 2 added
#: the simulation-engine choice to the settings' semantic fields; schema
#: 3 added the resolved STA engine + lattice kernel schema and the
#: shard's BB-combination span (combo-tensor shards).
FINGERPRINT_SCHEMA = 3


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace, plain floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _update_array(digest, array: np.ndarray) -> None:
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())


def design_fingerprint(design: "ImplementedDesign") -> str:
    """SHA-256 over the analysis-relevant content of an implemented design."""
    digest = hashlib.sha256()
    digest.update(f"schema:{FINGERPRINT_SCHEMA};".encode())

    netlist = design.netlist
    for cell in netlist.cells:
        digest.update(
            (
                f"{cell.template.name}/{cell.drive_name}"
                f"|{','.join(str(n.index) for n in cell.input_nets)}"
                f"|{','.join(str(n.index) for n in cell.output_nets)};"
            ).encode()
        )
    for net in netlist.nets:
        driver = net.driver
        digest.update(
            (
                f"{int(net.is_primary_input)}{int(net.is_primary_output)}"
                f"{int(net.is_clock)}"
                f"|{driver.cell.index if driver else -1}"
                f",{driver.position if driver else -1};"
            ).encode()
        )
    for kind, buses in (("i", netlist.input_buses), ("o", netlist.output_buses)):
        for name in buses:
            bus = buses[name]
            digest.update(
                (
                    f"{kind}|{name}|{int(bus.signed)}"
                    f"|{','.join(str(n.index) for n in bus.nets)};"
                ).encode()
            )
    clock = netlist.clock_net.index if netlist.clock_net else -1
    digest.update(f"clk:{clock};".encode())

    # Electrical data of every distinct template actually instantiated.
    templates = {}
    for cell in netlist.cells:
        templates[cell.template.name] = cell.template
    for name in sorted(templates):
        template = templates[name]
        digest.update(
            canonical_json(
                {
                    "name": template.name,
                    "inputs": list(template.inputs),
                    "outputs": list(template.outputs),
                    "sequential": template.is_sequential,
                    "clk_to_q_ps": template.clk_to_q_ps,
                    "setup_ps": template.setup_ps,
                    "hold_ps": template.hold_ps,
                    "drives": {
                        drive: asdict(template.drives[drive])
                        for drive in sorted(template.drives)
                    },
                }
            ).encode()
        )

    _update_array(digest, design.parasitics.wire_cap_ff)
    _update_array(digest, design.parasitics.wire_res_ohm)
    _update_array(digest, np.asarray(design.domains, dtype=np.int64))
    digest.update(f"domains:{design.num_domains};".encode())

    library = netlist.library
    digest.update(
        canonical_json(
            {
                "process": asdict(library.process),
                "temperature_c": library.temperature_c,
                "constraint": {
                    "period_ps": design.constraint.period_ps,
                    "uncertainty_ps": design.constraint.uncertainty_ps,
                },
                "fclk_ghz": design.fclk_ghz,
            }
        ).encode()
    )
    return digest.hexdigest()


def configs_fingerprint(configs: np.ndarray) -> str:
    """SHA-256 over the explored BB configuration matrix."""
    digest = hashlib.sha256()
    _update_array(digest, np.asarray(configs, dtype=bool))
    return digest.hexdigest()


def shard_key(
    design_digest: str,
    settings: "ExplorationSettings",
    configs_digest: str,
    shard: "Shard",
) -> str:
    """Cache key of one shard of one sweep.

    Independent of shard *index* and worker count, so a re-plan of the
    same knob grid (e.g. a resume with a different shard size that happens
    to produce an identical slice) still hits.

    The key embeds the *resolved* STA engine plus the lattice kernel's
    schema version: a pointwise shard is never served to a lattice run
    (the same bug class schema 2 fixed for ``sim_engine``), while an
    explicit ``--sta-engine lattice`` and a defaulted ``auto`` -- which
    run the same kernel -- interoperate on one cache.  The shard's
    BB-combination span keys the combo-tensor slice it covers.
    """
    from repro.sta.lattice import LATTICE_SCHEMA

    payload: Dict[str, object] = {
        "schema": FINGERPRINT_SCHEMA,
        "design": design_digest,
        "settings": settings.semantic_fields(),
        "sta": {
            "engine": settings.resolved_sta_engine,
            "lattice_schema": LATTICE_SCHEMA,
        },
        "configs": configs_digest,
        "shard": {
            "bitwidths": list(shard.bitwidths),
            "vdd_values": list(shard.vdd_values),
            "combos": [shard.combo_lo, shard.combo_hi],
        },
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
