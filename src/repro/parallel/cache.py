"""Persistent, content-addressed cache of exploration shard results.

Layout: one JSON file per shard under the cache root (default
``$REPRO_CACHE_DIR``, else ``~/.cache/repro``), named by the shard's
SHA-256 key.  Every entry embeds a checksum of its own body; a corrupted,
truncated or stale-schema entry is *detected, discarded and recomputed* --
never silently served.  Writes are atomic (temp file + ``os.replace``) so
a killed sweep can only ever lose the shard it was writing, which is what
makes the cache double as the checkpoint store for resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.exploration import KnobCellResult
from repro.parallel.fingerprint import FINGERPRINT_SCHEMA, canonical_json

#: Environment override for the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of one sweep (or one cache object)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100:.0f}%), "
            f"{self.invalidations} invalidated, {self.writes} written"
        )


@dataclass
class DiskUsage:
    """What ``repro cache stats`` reports about the on-disk store."""

    directory: Path
    entries: int
    total_bytes: int

    def describe(self) -> str:
        return (
            f"{self.directory}: {self.entries} entries, "
            f"{self.total_bytes / 1024:.1f} KiB"
        )


def _body_checksum(body: Dict) -> str:
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


class ResultCache:
    """Stores shard results keyed by content fingerprint.

    All lookups/writes update :attr:`stats`; :meth:`load` may be handed a
    sweep-local :class:`CacheStats` to track one run independently of the
    cache object's lifetime counters.
    """

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- lookup ------------------------------------------------------------

    def load(
        self, key: str, stats: Optional[CacheStats] = None
    ) -> Optional[List[KnobCellResult]]:
        """The shard's cells, or None on miss/corruption (counted apart)."""
        trackers = [self.stats] + ([stats] if stats is not None else [])
        path = self._path(key)
        try:
            with open(path, "r") as stream:
                entry = json.load(stream)
            if entry.get("schema") != FINGERPRINT_SCHEMA:
                raise ValueError(f"schema {entry.get('schema')!r}")
            if entry.get("key") != key:
                raise ValueError("key mismatch (renamed or copied entry)")
            body = entry["body"]
            if _body_checksum(body) != entry.get("checksum"):
                raise ValueError("checksum mismatch")
            cells = [KnobCellResult.from_dict(c) for c in body["cells"]]
        except FileNotFoundError:
            for tracker in trackers:
                tracker.misses += 1
            return None
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            # Corrupted or incompatible: drop it so the slot is recomputed.
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
            for tracker in trackers:
                tracker.invalidations += 1
                tracker.misses += 1
            return None
        for tracker in trackers:
            tracker.hits += 1
        return cells

    # -- store -------------------------------------------------------------

    def store(
        self,
        key: str,
        cells: List[KnobCellResult],
        stats: Optional[CacheStats] = None,
    ) -> None:
        """Atomically persist one shard's cells under *key*."""
        self.directory.mkdir(parents=True, exist_ok=True)
        body = {"cells": [cell.to_dict() for cell in cells]}
        entry = {
            "schema": FINGERPRINT_SCHEMA,
            "key": key,
            "checksum": _body_checksum(body),
            "body": body,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                json.dump(entry, stream)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        if stats is not None:
            stats.writes += 1

    # -- maintenance -------------------------------------------------------

    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.glob("*.json") if p.is_file()
        )

    def disk_usage(self) -> DiskUsage:
        entries = self._entries()
        return DiskUsage(
            directory=self.directory,
            entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return removed
