"""The sharded exploration engine.

Execution model: plan shards, satisfy as many as possible from the
persistent cache, run the misses (in-process at one worker, on a
``ProcessPoolExecutor`` otherwise), checkpoint each shard into the cache
the moment it completes, then merge everything in canonical knob order.
Because a completed shard is durable before the next one is awaited, an
interrupted sweep resumes from its last finished shard: re-running the
same call simply turns completed shards into cache hits.

Workers receive the pickled :class:`ImplementedDesign` once (pool
initializer), compile their own timing graph, and are sent only tiny
shard descriptions; per-shard return values are a handful of operating
points.  Determinism: every engine along the path (simulation, batched
STA, power) is seeded/closed-form numpy, so a shard computes the same
bits in any process -- the differential suite holds the engine to that.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import AUTO_WORKERS, ExplorationSettings
from repro.core.exploration import (
    ExhaustiveExplorer,
    ExplorationResult,
    KnobCellResult,
    merge_cell_results,
)
from repro.core.flow import ImplementedDesign
from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.fingerprint import (
    configs_fingerprint,
    design_fingerprint,
    shard_key,
)
from repro.parallel.shards import Shard, plan_shards
from repro.sta.batch import all_bb_configs

#: Environment override for auto-detected worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_worker_count(requested: int) -> int:
    """Map a ``settings.workers`` value to an actual worker count.

    ``AUTO_WORKERS`` consults ``$REPRO_WORKERS`` then the CPU count;
    explicit positive values are taken as-is (0 resolves to 1: the engine
    was engaged by the cache knob alone, so run serially).
    """
    if requested == AUTO_WORKERS:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be an integer, got {env!r}"
                )
        return max(1, os.cpu_count() or 1)
    return max(1, requested)


# -- worker-process side ----------------------------------------------------

#: Per-worker-process state installed by the pool initializer; the
#: explorer is built lazily so workers that never receive a shard don't
#: pay graph compilation.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    design: ImplementedDesign,
    settings: ExplorationSettings,
    configs: np.ndarray,
) -> None:
    _WORKER_STATE["design"] = design
    _WORKER_STATE["settings"] = settings
    _WORKER_STATE["configs"] = configs
    _WORKER_STATE.pop("explorer", None)


def _run_shard(shard: Shard) -> List[KnobCellResult]:
    explorer = _WORKER_STATE.get("explorer")
    if explorer is None:
        explorer = ExhaustiveExplorer(_WORKER_STATE["design"])
        _WORKER_STATE["explorer"] = explorer
    settings: ExplorationSettings = _WORKER_STATE["settings"]
    return explorer.evaluate_cells(
        shard.bitwidths, shard.vdd_values, settings, _WORKER_STATE["configs"]
    )


# -- orchestrating side -----------------------------------------------------


class ParallelExplorer:
    """Runs the optimization phase sharded, cached and resumable.

    ``on_shard_complete(shard, from_cache)`` fires after each shard's
    result is durable (cached when caching is on) -- the progress hook the
    CLI uses and the seam the fault-injection tests kill a sweep through.
    """

    def __init__(
        self,
        design: ImplementedDesign,
        explorer: Optional[ExhaustiveExplorer] = None,
        on_shard_complete: Optional[Callable[[Shard, bool], None]] = None,
    ):
        self.design = design
        self._explorer = explorer
        self.on_shard_complete = on_shard_complete

    def _serial_explorer(self) -> ExhaustiveExplorer:
        if self._explorer is None:
            self._explorer = ExhaustiveExplorer(self.design)
        return self._explorer

    def run(
        self,
        settings: Optional[ExplorationSettings] = None,
        configs: Optional[np.ndarray] = None,
        max_vdds_per_shard: Optional[int] = None,
    ) -> ExplorationResult:
        """Explore the full knob grid; bit-identical to the serial path."""
        if settings is None:
            settings = ExplorationSettings()
        start = time.perf_counter()
        if configs is None:
            configs = all_bb_configs(self.design.num_domains)
        configs = np.asarray(configs, dtype=bool)
        shards = plan_shards(settings, max_vdds_per_shard)

        cache = ResultCache(settings.cache_dir) if settings.cache else None
        stats = CacheStats() if cache else None
        design_digest: Optional[str] = None
        configs_digest: Optional[str] = None
        if cache:
            design_digest = design_fingerprint(self.design)
            configs_digest = configs_fingerprint(configs)

        cells: List[KnobCellResult] = []
        pending: List[Tuple[Shard, Optional[str]]] = []
        for shard in shards:
            key = (
                shard_key(design_digest, settings, configs_digest, shard)
                if cache
                else None
            )
            cached = cache.load(key, stats) if cache else None
            if cached is not None:
                cells.extend(cached)
                if self.on_shard_complete:
                    self.on_shard_complete(shard, True)
            else:
                pending.append((shard, key))

        workers = resolve_worker_count(settings.workers)
        if pending:
            if workers == 1 or len(pending) == 1:
                self._run_serial(pending, settings, configs, cache, stats, cells)
            else:
                self._run_pool(
                    pending, settings, configs, cache, stats, cells, workers
                )

        result = merge_cell_results(
            self.design, settings, cells, time.perf_counter() - start
        )
        result.cache_stats = stats
        return result

    def _complete(
        self,
        shard: Shard,
        key: Optional[str],
        shard_cells: List[KnobCellResult],
        cache: Optional[ResultCache],
        stats: Optional[CacheStats],
        cells: List[KnobCellResult],
    ) -> None:
        """Make one shard durable, then visible, then announce it."""
        if cache:
            cache.store(key, shard_cells, stats)
        cells.extend(shard_cells)
        if self.on_shard_complete:
            self.on_shard_complete(shard, False)

    def _run_serial(self, pending, settings, configs, cache, stats, cells):
        explorer = self._serial_explorer()
        for shard, key in pending:
            shard_cells = explorer.evaluate_cells(
                shard.bitwidths, shard.vdd_values, settings, configs
            )
            self._complete(shard, key, shard_cells, cache, stats, cells)

    def _run_pool(
        self, pending, settings, configs, cache, stats, cells, workers
    ):
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_init_worker,
            initargs=(self.design, settings, configs),
        ) as pool:
            futures = {
                pool.submit(_run_shard, shard): (shard, key)
                for shard, key in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    shard, key = futures[future]
                    self._complete(
                        shard, key, future.result(), cache, stats, cells
                    )
