"""The sharded exploration engine.

Execution model: plan shards, satisfy as many as possible from the
persistent cache, run the misses (in-process at one worker, on a
``ProcessPoolExecutor`` otherwise), checkpoint each shard into the cache
the moment it completes, then merge everything in canonical knob order.
Because a completed shard is durable before the next one is awaited, an
interrupted sweep resumes from its last finished shard: re-running the
same call simply turns completed shards into cache hits.

Workers receive the pickled :class:`ImplementedDesign` once (pool
initializer), compile their own timing graph, and are sent only tiny
shard descriptions; per-shard return values are a handful of operating
points.  Determinism: every engine along the path (simulation, batched
STA, power) is seeded/closed-form numpy, so a shard computes the same
bits in any process -- the differential suite holds the engine to that.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import AUTO_WORKERS, ExplorationSettings
from repro.core.exploration import (
    ExhaustiveExplorer,
    ExplorationResult,
    KnobCellResult,
    merge_cell_results,
)
from repro.core.flow import ImplementedDesign
from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.fingerprint import (
    configs_fingerprint,
    design_fingerprint,
    shard_key,
)
from repro.parallel.shards import Shard, plan_shards
from repro.sta.batch import all_bb_configs

#: Environment override for auto-detected worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_worker_count(requested: int) -> int:
    """Map a ``settings.workers`` value to an actual worker count.

    ``AUTO_WORKERS`` consults ``$REPRO_WORKERS`` then the CPU count;
    explicit positive values are taken as-is (0 resolves to 1: the engine
    was engaged by the cache knob alone, so run serially).  The parsing
    and clamping live in :func:`repro.core.config.resolve_env_count`,
    shared with the fleet serving tier.
    """
    from repro.core.config import resolve_env_count

    return resolve_env_count(requested, WORKERS_ENV, auto=AUTO_WORKERS)


class SweepInterrupted(RuntimeError):
    """A sweep stopped on request after flushing its completed shards.

    Raised by :class:`ParallelExplorer` when the interrupt event is set
    (the CLI arms it from SIGINT/SIGTERM).  Every shard completed before
    the interrupt is durable in the persistent cache, so re-running the
    same command with ``--resume`` continues from here.
    """

    def __init__(self, completed: int, total: int):
        super().__init__(
            f"sweep interrupted after {completed}/{total} shards"
        )
        self.completed = completed
        self.total = total


class ShardRetryExhausted(RuntimeError):
    """A shard kept failing past the per-shard retry budget."""


#: Process-wide interrupt flag checked between shard completions.  The
#: CLI's signal handlers set it; tests may set and clear it directly.
_INTERRUPT = threading.Event()


def interrupt_event() -> threading.Event:
    """The engine's cooperative-interrupt flag (set = stop gracefully)."""
    return _INTERRUPT


@dataclass
class ResilienceStats:
    """What the engine survived during one sweep."""

    worker_crashes: int = 0
    pool_respawns: int = 0
    shard_retries: int = 0
    shard_timeouts: int = 0

    @property
    def any_faults(self) -> bool:
        return bool(
            self.worker_crashes
            or self.pool_respawns
            or self.shard_retries
            or self.shard_timeouts
        )

    def describe(self) -> str:
        return (
            f"resilience: {self.worker_crashes} worker crashes, "
            f"{self.shard_timeouts} timeouts, {self.pool_respawns} pool "
            f"respawns, {self.shard_retries} shard retries"
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "worker_crashes": self.worker_crashes,
            "pool_respawns": self.pool_respawns,
            "shard_retries": self.shard_retries,
            "shard_timeouts": self.shard_timeouts,
        }


# -- worker-process side ----------------------------------------------------

#: Per-worker-process state installed by the pool initializer; the
#: explorer is built lazily so workers that never receive a shard don't
#: pay graph compilation.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    design: ImplementedDesign,
    settings: ExplorationSettings,
    configs: np.ndarray,
    fault_plan: Optional[object] = None,
) -> None:
    # Workers must not inherit the CLI's graceful-shutdown handlers:
    # SIGINT is the parent's to coordinate (ignore it here), SIGTERM must
    # actually kill a hung worker when the engine terminates the pool.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _WORKER_STATE["design"] = design
    _WORKER_STATE["settings"] = settings
    _WORKER_STATE["configs"] = configs
    _WORKER_STATE["fault_plan"] = fault_plan
    _WORKER_STATE.pop("explorer", None)


def _run_shard(shard: Shard) -> List[KnobCellResult]:
    plan = _WORKER_STATE.get("fault_plan")
    if plan is not None:
        plan.maybe_fault(shard.index)
    explorer = _WORKER_STATE.get("explorer")
    if explorer is None:
        explorer = ExhaustiveExplorer(_WORKER_STATE["design"])
        _WORKER_STATE["explorer"] = explorer
    settings: ExplorationSettings = _WORKER_STATE["settings"]
    configs = _WORKER_STATE["configs"]
    return explorer.evaluate_cells(
        shard.bitwidths,
        shard.vdd_values,
        settings,
        configs[shard.combo_slice()],
        combo_lo=shard.combo_lo,
    )


# -- orchestrating side -----------------------------------------------------


class ParallelExplorer:
    """Runs the optimization phase sharded, cached and resumable.

    ``on_shard_complete(shard, from_cache)`` fires after each shard's
    result is durable (cached when caching is on) -- the progress hook the
    CLI uses and the seam the fault-injection tests kill a sweep through.
    """

    def __init__(
        self,
        design: ImplementedDesign,
        explorer: Optional[ExhaustiveExplorer] = None,
        on_shard_complete: Optional[Callable[[Shard, bool], None]] = None,
        max_shard_retries: int = 2,
        shard_timeout_s: Optional[float] = None,
        fault_plan: Optional[object] = None,
    ):
        if max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if shard_timeout_s is not None and shard_timeout_s <= 0.0:
            raise ValueError("shard_timeout_s must be positive")
        self.design = design
        self._explorer = explorer
        self.on_shard_complete = on_shard_complete
        #: How many times one shard may be re-run after a crash/timeout.
        self.max_shard_retries = max_shard_retries
        #: Progress timeout: if no shard completes for this long, the
        #: pool is declared hung, its processes terminated, and the
        #: unfinished shards requeued.  None disables the watchdog.
        self.shard_timeout_s = shard_timeout_s
        #: Optional picklable fault plan shipped to workers (chaos tests).
        self.fault_plan = fault_plan

    def _serial_explorer(self) -> ExhaustiveExplorer:
        if self._explorer is None:
            self._explorer = ExhaustiveExplorer(self.design)
        return self._explorer

    def run(
        self,
        settings: Optional[ExplorationSettings] = None,
        configs: Optional[np.ndarray] = None,
        max_vdds_per_shard: Optional[int] = None,
        max_combos_per_shard: Optional[int] = None,
    ) -> ExplorationResult:
        """Explore the full exploration tensor; bit-identical to serial.

        Shards are slices of the (bitwidth, VDD, BB-combo) tensor: the
        combo axis splits past ``max_combos_per_shard`` rows (default
        :data:`repro.parallel.shards.DEFAULT_MAX_COMBOS_PER_SHARD`), so
        large lattices spread evenly over the pool instead of riding on
        whichever worker drew their bitwidth.
        """
        if settings is None:
            settings = ExplorationSettings()
        start = time.perf_counter()
        if configs is None:
            configs = all_bb_configs(self.design.num_domains)
        configs = np.asarray(configs, dtype=bool)
        shards = plan_shards(
            settings, len(configs), max_vdds_per_shard, max_combos_per_shard
        )

        cache = ResultCache(settings.cache_dir) if settings.cache else None
        stats = CacheStats() if cache else None
        design_digest: Optional[str] = None
        configs_digest: Optional[str] = None
        if cache:
            design_digest = design_fingerprint(self.design)
            configs_digest = configs_fingerprint(configs)

        cells: List[KnobCellResult] = []
        pending: List[Tuple[Shard, Optional[str]]] = []
        for shard in shards:
            key = (
                shard_key(design_digest, settings, configs_digest, shard)
                if cache
                else None
            )
            cached = cache.load(key, stats) if cache else None
            if cached is not None:
                cells.extend(cached)
                if self.on_shard_complete:
                    self.on_shard_complete(shard, True)
            else:
                pending.append((shard, key))

        workers = resolve_worker_count(settings.workers)
        fault_stats = ResilienceStats()
        if pending:
            if workers == 1 or len(pending) == 1:
                self._run_serial(pending, settings, configs, cache, stats, cells)
            else:
                self._run_pool(
                    pending, settings, configs, cache, stats, cells, workers,
                    fault_stats,
                )

        result = merge_cell_results(
            self.design, settings, cells, time.perf_counter() - start
        )
        result.cache_stats = stats
        result.fault_stats = fault_stats
        return result

    def _complete(
        self,
        shard: Shard,
        key: Optional[str],
        shard_cells: List[KnobCellResult],
        cache: Optional[ResultCache],
        stats: Optional[CacheStats],
        cells: List[KnobCellResult],
    ) -> None:
        """Make one shard durable, then visible, then announce it."""
        if cache:
            cache.store(key, shard_cells, stats)
        cells.extend(shard_cells)
        if self.on_shard_complete:
            self.on_shard_complete(shard, False)

    def _run_serial(self, pending, settings, configs, cache, stats, cells):
        explorer = self._serial_explorer()
        total = len(pending)
        for index, (shard, key) in enumerate(pending):
            if _INTERRUPT.is_set():
                raise SweepInterrupted(index, total)
            shard_cells = explorer.evaluate_cells(
                shard.bitwidths,
                shard.vdd_values,
                settings,
                configs[shard.combo_slice()],
                combo_lo=shard.combo_lo,
            )
            self._complete(shard, key, shard_cells, cache, stats, cells)

    def _run_pool(
        self, pending, settings, configs, cache, stats, cells, workers,
        fault_stats,
    ):
        """Pool path with crash/hang recovery.

        Each round runs the outstanding shards on a fresh pool; a
        ``BrokenProcessPool`` (worker killed mid-shard) or a progress
        timeout terminates the round, and every shard that did not make
        it into the cache is requeued with its attempt count bumped --
        up to ``max_shard_retries`` per shard.  Work completed before a
        crash is already durable (``_complete`` stores before
        announcing), so recovery never recomputes finished shards.
        """
        total = len(pending)
        completed = 0
        queue = [(shard, key, 0) for shard, key in pending]
        first_round = True
        while queue:
            if not first_round:
                fault_stats.pool_respawns += 1
            first_round = False
            batch, queue = queue, []
            done_now, unfinished = self._drain_batch(
                batch, settings, configs, cache, stats, cells,
                fault_stats, workers, completed, total,
            )
            completed += done_now
            for shard, key, attempt in unfinished:
                if attempt + 1 > self.max_shard_retries:
                    raise ShardRetryExhausted(
                        f"shard {shard.index} failed "
                        f"{attempt + 1} times (budget "
                        f"{self.max_shard_retries} retries)"
                    )
                fault_stats.shard_retries += 1
                queue.append((shard, key, attempt + 1))

    def _drain_batch(
        self, batch, settings, configs, cache, stats, cells,
        fault_stats, workers, done_before, total,
    ):
        """One pool lifetime: returns (completed_count, unfinished_entries)."""
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(batch)),
            initializer=_init_worker,
            initargs=(self.design, settings, configs, self.fault_plan),
        )
        futures = {
            pool.submit(_run_shard, entry[0]): entry for entry in batch
        }
        remaining = set(futures)
        processed = set()
        done_count = 0
        broken = False
        timed_out = False
        try:
            while remaining:
                if _INTERRUPT.is_set():
                    raise SweepInterrupted(done_before + done_count, total)
                done, remaining = wait(
                    remaining,
                    timeout=self.shard_timeout_s,
                    return_when=FIRST_COMPLETED,
                )
                if not done and self.shard_timeout_s is not None:
                    timed_out = True
                    fault_stats.shard_timeouts += 1
                    break
                for future in done:
                    shard, key, _attempt = futures[future]
                    shard_cells = future.result()
                    self._complete(shard, key, shard_cells, cache, stats, cells)
                    processed.add(future)
                    done_count += 1
        except BrokenProcessPool:
            broken = True
            fault_stats.worker_crashes += 1
        finally:
            if timed_out or broken:
                # The executor can't join hung/dead workers; terminate
                # them so shutdown doesn't block, then requeue.
                for proc in (getattr(pool, "_processes", None) or {}).values():
                    proc.terminate()
                pool.shutdown(wait=False)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        unfinished = [
            entry for future, entry in futures.items()
            if future not in processed
        ]
        return done_count, unfinished
