"""Work-sharded, cached execution of the optimization phase.

The exhaustive exploration (``ExhaustiveExplorer.run``) is the flow's
runtime bottleneck: bitwidths x VDDs x 2^NMAX back-bias assignments, each
cell paying an activity simulation and a batched STA sweep.  This package
makes that sweep scale without changing a single number:

* :mod:`repro.parallel.shards` splits the (bitwidth, VDD) knob grid into
  independent shards;
* :mod:`repro.parallel.engine` executes shards on a process pool (serial
  fallback at one worker) and merges them in canonical knob order;
* :mod:`repro.parallel.cache` persists per-shard results content-addressed
  by a SHA-256 fingerprint of everything that determines them
  (:mod:`repro.parallel.fingerprint`), giving warm-start re-runs and
  checkpoint/resume of interrupted sweeps for free.

Results are bit-identical to the serial explorer by construction (shards
run the same ``evaluate_cells`` code) and by test
(``tests/test_parallel_differential.py``).
"""

from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.engine import (
    ParallelExplorer,
    ResilienceStats,
    ShardRetryExhausted,
    SweepInterrupted,
    interrupt_event,
    resolve_worker_count,
)
from repro.parallel.fingerprint import (
    canonical_json,
    design_fingerprint,
    shard_key,
)
from repro.parallel.shards import Shard, plan_shards

__all__ = [
    "CacheStats",
    "ParallelExplorer",
    "ResilienceStats",
    "ResultCache",
    "Shard",
    "ShardRetryExhausted",
    "SweepInterrupted",
    "canonical_json",
    "design_fingerprint",
    "interrupt_event",
    "plan_shards",
    "resolve_worker_count",
    "shard_key",
]
