"""Shard planning: slicing the (bitwidth, VDD) knob grid.

A shard is a rectangular slice of the knob grid that one worker evaluates
in one go.  The canonical plan is one shard per bitwidth carrying every
VDD: activity simulation (the per-bitwidth fixed cost) then runs exactly
once per shard, and with the paper's 16 bitwidths there is ample
parallelism for any sane worker count.  ``max_vdds_per_shard`` splits
further for very tall VDD sweeps (or for shard-boundary testing); results
are invariant to the plan because every plan covers each (bitwidth, VDD)
cell exactly once and the merge re-orders cells canonically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import ExplorationSettings


@dataclass(frozen=True)
class Shard:
    """One independently computable slice of the knob grid."""

    index: int
    bitwidths: Tuple[int, ...]
    vdd_values: Tuple[float, ...]

    @property
    def num_cells(self) -> int:
        return len(self.bitwidths) * len(self.vdd_values)

    def describe(self) -> str:
        bits = ",".join(str(b) for b in self.bitwidths)
        vdds = ",".join(f"{v:g}" for v in self.vdd_values)
        return f"shard {self.index}: bits [{bits}] x vdd [{vdds}]"


def plan_shards(
    settings: ExplorationSettings,
    max_vdds_per_shard: Optional[int] = None,
) -> List[Shard]:
    """Deterministic shard plan covering the settings' knob grid.

    The plan depends only on the knob grid (never on worker count), so
    cache keys derived from shards are stable across machines and
    executions with different parallelism.
    """
    if max_vdds_per_shard is not None and max_vdds_per_shard < 1:
        raise ValueError("max_vdds_per_shard must be >= 1")
    step = max_vdds_per_shard or len(settings.vdd_values)
    vdd_groups = [
        settings.vdd_values[i:i + step]
        for i in range(0, len(settings.vdd_values), step)
    ]
    shards: List[Shard] = []
    for bits in settings.bitwidths:
        for group in vdd_groups:
            shards.append(Shard(len(shards), (bits,), tuple(group)))
    return shards
