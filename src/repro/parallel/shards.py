"""Shard planning: slicing the (bitwidth, VDD, BB-combo) tensor.

A shard is a rectangular slice of the exploration tensor that one worker
evaluates in one go.  The canonical plan is one shard per bitwidth
carrying every VDD and the whole BB-combination axis: activity
simulation (the per-bitwidth fixed cost) then runs exactly once per
shard, and with the paper's 16 bitwidths there is ample parallelism for
any sane worker count.  Two further axes split on demand:

* ``max_vdds_per_shard`` slices the VDD axis (very tall VDD sweeps, or
  shard-boundary testing);
* ``max_combos_per_shard`` slices the BB-combination axis.  The lattice
  STA engine evaluates a shard's combos in one ``(combos, nets)`` tensor
  pass, so a combo slice is a contiguous row block of that tensor --
  beyond :data:`DEFAULT_MAX_COMBOS_PER_SHARD` combinations (NMAX >= 11)
  the axis splits automatically, which both bounds the arrival-matrix
  memory per worker and gives the process pool evenly sized pieces of
  designs whose lattice dwarfs their knob grid.

Results are invariant to the plan because every plan covers each
(bitwidth, VDD, combo) point exactly once and the merge re-orders and
re-folds slices canonically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import ExplorationSettings

#: Combo-axis shard ceiling: one shard carries at most this many BB
#: combinations.  2^10 keeps every design the paper ships (NMAX <= 9) in
#: a single slice per bitwidth while bounding the lattice tensor of
#: bigger partitions to ~8 MB per 1k nets.
DEFAULT_MAX_COMBOS_PER_SHARD = 1024


@dataclass(frozen=True)
class Shard:
    """One independently computable slice of the exploration tensor.

    ``combo_lo``/``combo_hi`` bound the shard's rows of the BB
    configuration matrix; ``combo_hi`` is exclusive, and ``None`` means
    "through the end" (the hand-built-shard convenience -- planned
    shards always carry explicit bounds).
    """

    index: int
    bitwidths: Tuple[int, ...]
    vdd_values: Tuple[float, ...]
    combo_lo: int = 0
    combo_hi: Optional[int] = None

    @property
    def num_cells(self) -> int:
        return len(self.bitwidths) * len(self.vdd_values)

    def combo_slice(self) -> slice:
        """The shard's row slice of the full configuration matrix."""
        return slice(self.combo_lo, self.combo_hi)

    def describe(self) -> str:
        bits = ",".join(str(b) for b in self.bitwidths)
        vdds = ",".join(f"{v:g}" for v in self.vdd_values)
        hi = "" if self.combo_hi is None else self.combo_hi
        combos = f" x combos [{self.combo_lo}:{hi}]"
        return f"shard {self.index}: bits [{bits}] x vdd [{vdds}]{combos}"


def plan_shards(
    settings: ExplorationSettings,
    num_combos: Optional[int] = None,
    max_vdds_per_shard: Optional[int] = None,
    max_combos_per_shard: Optional[int] = None,
) -> List[Shard]:
    """Deterministic shard plan covering the settings' exploration tensor.

    *num_combos* is the BB-configuration count (rows of the configs
    matrix); ``None`` plans a single unbounded combo block, preserving
    the legacy per-bitwidth plan for callers that only count shards.
    The plan depends only on the tensor extents (never on worker count),
    so cache keys derived from shards are stable across machines and
    executions with different parallelism.
    """
    if max_vdds_per_shard is not None and max_vdds_per_shard < 1:
        raise ValueError("max_vdds_per_shard must be >= 1")
    if max_combos_per_shard is not None and max_combos_per_shard < 1:
        raise ValueError("max_combos_per_shard must be >= 1")
    step = max_vdds_per_shard or len(settings.vdd_values)
    vdd_groups = [
        settings.vdd_values[i:i + step]
        for i in range(0, len(settings.vdd_values), step)
    ]
    if num_combos is None:
        combo_spans: List[Tuple[int, Optional[int]]] = [(0, None)]
    else:
        block = max_combos_per_shard or DEFAULT_MAX_COMBOS_PER_SHARD
        combo_spans = [
            (lo, min(lo + block, num_combos))
            for lo in range(0, max(num_combos, 1), block)
        ]
    shards: List[Shard] = []
    for bits in settings.bitwidths:
        for group in vdd_groups:
            for lo, hi in combo_spans:
                shards.append(
                    Shard(len(shards), (bits,), tuple(group), lo, hi)
                )
    return shards
