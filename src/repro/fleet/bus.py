"""The fleet bus: one shared epoch that says "a peer saw silicon trouble".

Bahoo-style block-level voltage-overscaling deployments treat a margin
event on one block as evidence about the *shared* environment (same die,
same rail, same package temperature), so the right reaction is
fleet-wide retreat, not per-process.  The bus is the cheapest possible
carrier of that signal:

* a monotone **epoch** counter plus the alert kind and origin worker,
  all in :func:`multiprocessing.Value` cells shared by fork/pickle;
* **posting** (rare: a margin fallback, a degradation) takes a lock and
  bumps the epoch;
* **reading** (hot: once per served request) is one lock-free int load
  -- workers poll the epoch before every decision, so a posted alert is
  seen by a peer at its very next request.

A worker observing an epoch it has not seen, posted by *another* worker,
enters **retreat**: it serves the next ``retreat_budget`` requests on
the scheduler's degraded path (static maximum-accuracy mode -- the
sign-off-margined power-on rail) while the local guard re-evaluates.
That bounds fleet-wide propagation at "one request per peer" after the
post lands, which the differential suite measures end to end.

Alert kinds reuse the fault layer's silicon event vocabulary
(:data:`repro.faults.events.SILICON_KINDS`) plus ``margin_erosion`` for
guard fallbacks that are not attributable to a single injected event.

The bus also carries the **recalibration channel** (PR 9): when a worker
runs the canary-probe loop (:mod:`repro.serve.recal`) and commits a new
margin epoch, it posts the learner's per-mode estimates + admissibility
onto fixed-size shared arrays via :meth:`FleetBus.post_margins`.  Peers
poll the recal epoch with the same one-int-load pattern as alerts and
adopt the state into their own (passive) learner -- so re-advance
decisions propagate fleet-wide within the same bounded window that
degradation already honors.  The array slots are sized at construction
(``num_modes``) because shared memory cannot grow after fork.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Tuple

from repro.faults.events import SILICON_KINDS

#: Guard fallback with no single attributable injected event.
KIND_MARGIN_EROSION = "margin_erosion"

#: Alert kind <-> wire code (sorted for cross-process determinism).
ALERT_KINDS: Tuple[str, ...] = tuple(
    sorted(SILICON_KINDS | {KIND_MARGIN_EROSION})
)
ALERT_CODES: Dict[str, int] = {
    kind: code for code, kind in enumerate(ALERT_KINDS)
}


def alert_code(kind: str) -> int:
    try:
        return ALERT_CODES[kind]
    except KeyError:
        raise ValueError(
            f"unknown alert kind {kind!r}; choose from {list(ALERT_KINDS)}"
        ) from None


def alert_kind(code: int) -> str:
    if not 0 <= code < len(ALERT_KINDS):
        raise ValueError(f"unknown alert code {code}")
    return ALERT_KINDS[code]


class FleetBus:
    """Shared degradation-alert channel across one fleet's processes."""

    def __init__(self, num_modes: int = 0):
        if num_modes < 0:
            raise ValueError("num_modes must be >= 0")
        # lock=False: single-writer-at-a-time is enforced by _lock, and
        # readers tolerate tearing-free int64 loads.
        self._epoch = multiprocessing.Value("q", 0, lock=False)
        self._kind = multiprocessing.Value("q", 0, lock=False)
        self._origin = multiprocessing.Value("q", -1, lock=False)
        self._lock = multiprocessing.Lock()
        # Recalibration channel (zero-sized when the fleet has no
        # margin-compiled table: post_margins then refuses).
        self.num_modes = num_modes
        self._recal_epoch = multiprocessing.Value("q", 0, lock=False)
        self._recal_origin = multiprocessing.Value("q", -1, lock=False)
        self._margins = multiprocessing.Array("d", num_modes, lock=False)
        self._admissible = multiprocessing.Array(
            "b", [1] * num_modes, lock=False
        )

    def post(self, kind: str, origin: int) -> int:
        """Publish an alert; returns the new epoch."""
        code = alert_code(kind)
        with self._lock:
            self._kind.value = code
            self._origin.value = origin
            self._epoch.value += 1
            return self._epoch.value

    def read(self) -> Tuple[int, str, int]:
        """(epoch, kind, origin) -- hot path, one int load each."""
        epoch = self._epoch.value
        return epoch, alert_kind(self._kind.value), self._origin.value

    @property
    def epoch(self) -> int:
        return self._epoch.value

    # -- recalibration channel -----------------------------------------------

    def post_margins(
        self, estimates, admissible, origin: int
    ) -> int:
        """Publish one committed learner state; returns the recal epoch.

        The returned epoch is the fleet-wide identity of this margin
        state: the poster adopts it as its own learner epoch, so every
        worker's ``recal_epoch`` converges to the same value.
        """
        if self.num_modes == 0:
            raise ValueError(
                "bus has no margin slots (construct with num_modes > 0)"
            )
        if len(estimates) != self.num_modes or len(admissible) != (
            self.num_modes
        ):
            raise ValueError("state arrays must match the bus mode count")
        with self._lock:
            for index in range(self.num_modes):
                self._margins[index] = float(estimates[index])
                self._admissible[index] = 1 if admissible[index] else 0
            self._recal_origin.value = origin
            self._recal_epoch.value += 1
            return self._recal_epoch.value

    def read_margins(self) -> Tuple[int, List[float], List[bool], int]:
        """(epoch, estimates, admissible, origin) -- consistent snapshot.

        Readers are lock-free; a concurrent post is detected by the
        epoch changing across the copy, in which case the copy retries
        (posts are rare -- one per committed probe round).
        """
        while True:
            epoch = self._recal_epoch.value
            estimates = list(self._margins)
            admissible = [bool(value) for value in self._admissible]
            origin = self._recal_origin.value
            if self._recal_epoch.value == epoch:
                return epoch, estimates, admissible, origin

    @property
    def recal_epoch(self) -> int:
        return self._recal_epoch.value
