"""The fleet bus: one shared epoch that says "a peer saw silicon trouble".

Bahoo-style block-level voltage-overscaling deployments treat a margin
event on one block as evidence about the *shared* environment (same die,
same rail, same package temperature), so the right reaction is
fleet-wide retreat, not per-process.  The bus is the cheapest possible
carrier of that signal:

* a monotone **epoch** counter plus the alert kind and origin worker,
  all in :func:`multiprocessing.Value` cells shared by fork/pickle;
* **posting** (rare: a margin fallback, a degradation) takes a lock and
  bumps the epoch;
* **reading** (hot: once per served request) is one lock-free int load
  -- workers poll the epoch before every decision, so a posted alert is
  seen by a peer at its very next request.

A worker observing an epoch it has not seen, posted by *another* worker,
enters **retreat**: it serves the next ``retreat_budget`` requests on
the scheduler's degraded path (static maximum-accuracy mode -- the
sign-off-margined power-on rail) while the local guard re-evaluates.
That bounds fleet-wide propagation at "one request per peer" after the
post lands, which the differential suite measures end to end.

Alert kinds reuse the fault layer's silicon event vocabulary
(:data:`repro.faults.events.SILICON_KINDS`) plus ``margin_erosion`` for
guard fallbacks that are not attributable to a single injected event.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Tuple

from repro.faults.events import SILICON_KINDS

#: Guard fallback with no single attributable injected event.
KIND_MARGIN_EROSION = "margin_erosion"

#: Alert kind <-> wire code (sorted for cross-process determinism).
ALERT_KINDS: Tuple[str, ...] = tuple(
    sorted(SILICON_KINDS | {KIND_MARGIN_EROSION})
)
ALERT_CODES: Dict[str, int] = {
    kind: code for code, kind in enumerate(ALERT_KINDS)
}


def alert_code(kind: str) -> int:
    try:
        return ALERT_CODES[kind]
    except KeyError:
        raise ValueError(
            f"unknown alert kind {kind!r}; choose from {list(ALERT_KINDS)}"
        ) from None


def alert_kind(code: int) -> str:
    if not 0 <= code < len(ALERT_KINDS):
        raise ValueError(f"unknown alert code {code}")
    return ALERT_KINDS[code]


class FleetBus:
    """Shared degradation-alert channel across one fleet's processes."""

    def __init__(self):
        # lock=False: single-writer-at-a-time is enforced by _lock, and
        # readers tolerate tearing-free int64 loads.
        self._epoch = multiprocessing.Value("q", 0, lock=False)
        self._kind = multiprocessing.Value("q", 0, lock=False)
        self._origin = multiprocessing.Value("q", -1, lock=False)
        self._lock = multiprocessing.Lock()

    def post(self, kind: str, origin: int) -> int:
        """Publish an alert; returns the new epoch."""
        code = alert_code(kind)
        with self._lock:
            self._kind.value = code
            self._origin.value = origin
            self._epoch.value += 1
            return self._epoch.value

    def read(self) -> Tuple[int, str, int]:
        """(epoch, kind, origin) -- hot path, one int load each."""
        epoch = self._epoch.value
        return epoch, alert_kind(self._kind.value), self._origin.value

    @property
    def epoch(self) -> int:
        return self._epoch.value
