"""repro.fleet -- the multi-process fleet serving tier.

Scales :mod:`repro.serve` from one process to N with three pieces:

* :mod:`repro.fleet.hashing` -- the consistent-hash ring that pins every
  operator instance to one worker (order-preserving, cheap failover),
* :mod:`repro.fleet.bus` -- the shared degradation-alert epoch that
  turns one worker's margin event into fleet-wide retreat,
* :mod:`repro.fleet.worker` / :mod:`repro.fleet.router` -- the worker
  process (a stock scheduler fed by binary pipe frames, mode table
  mapped from shared memory) and the front-end router that batches and
  pipelines requests across the fleet.

See ``docs/serve.md`` (fleet section) for the invariants and
``repro fleet-serve`` for the CLI entry point.
"""

from repro.fleet.bus import ALERT_KINDS, FleetBus, KIND_MARGIN_EROSION
from repro.fleet.hashing import ConsistentHashRing, stable_hash
from repro.fleet.router import (
    FLEET_WORKERS_ENV,
    FleetError,
    FleetRouter,
    FleetServedPhase,
    resolve_fleet_workers,
)

__all__ = [
    "ALERT_KINDS",
    "ConsistentHashRing",
    "FLEET_WORKERS_ENV",
    "FleetBus",
    "FleetError",
    "FleetRouter",
    "FleetServedPhase",
    "KIND_MARGIN_EROSION",
    "resolve_fleet_workers",
    "stable_hash",
]
