"""One fleet worker: a stock serve scheduler behind a binary pipe.

A worker process owns nothing novel -- it runs exactly the
:class:`~repro.serve.scheduler.ModeScheduler` (+ optional
:class:`~repro.serve.guard.MarginGuard`) the single-process server runs.
What is fleet-specific is the plumbing around it:

* the mode table arrives as a **shared-memory segment name**, attached
  via :meth:`ModeTable.from_shared` -- zero JSON parses in the worker,
  which the stats reply proves with parse-counter deltas;
* requests arrive as **binary batch frames** (int64 triples), replies
  leave as binary frames too -- the router's per-request dispatch cost
  must stay far below the scheduler's decision cost or fan-out cannot
  reach the saturation benchmark's >= 1.8x floor;
* before every decision the worker polls the :class:`~repro.fleet.bus.
  FleetBus` epoch; a fresh alert posted by a *peer* flips it into
  retreat (``retreat_budget`` requests on the degraded static-mode
  path), and its own guard fallbacks are posted back onto the bus.

Frames are one pipe message each, first byte the tag: ``b"B"`` binary
batch, ``b"C"`` pickled control dict.  Every frame gets exactly one
reply frame, in order -- that invariant is what lets the router pipeline
batches without per-request sequence numbers.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fleet.bus import FleetBus, KIND_MARGIN_EROSION
from repro.serve.scheduler import ModeScheduler, ServedPhase, ServeRequest
from repro.serve.table import ModeTable, parse_counters

#: Frame tags.
TAG_BATCH = b"B"
TAG_CONTROL = b"C"

#: Reply flag bits.
FLAG_SWITCHED = 1
FLAG_BATCHED = 2
FLAG_DEGRADED = 4
FLAG_MARGIN_FALLBACK = 8
FLAG_FLEET_RETREAT = 16

#: Reply layout: int64 columns, float64 columns.
#: int: served_bits, flags, transition_retries, epoch_seen, recal_epoch
REPLY_INT_COLS = 5
REPLY_FLOAT_COLS = 5  # compute_e, transition_e, settle, queue_wait, decided_at


def encode_batch(triples: np.ndarray) -> bytes:
    """Request frame from an int64 ``(n, 3)`` [op_id, bits, cycles]."""
    return TAG_BATCH + np.ascontiguousarray(
        triples, dtype="<i8"
    ).tobytes()


def decode_batch(frame: bytes) -> np.ndarray:
    return np.frombuffer(frame, dtype="<i8", offset=1).reshape(-1, 3)


def encode_replies(ints: np.ndarray, floats: np.ndarray) -> bytes:
    return (
        TAG_BATCH
        + np.ascontiguousarray(ints, dtype="<i8").tobytes()
        + np.ascontiguousarray(floats, dtype="<f8").tobytes()
    )


def decode_replies(frame: bytes) -> Tuple[np.ndarray, np.ndarray]:
    row_bytes = 8 * (REPLY_INT_COLS + REPLY_FLOAT_COLS)
    count = (len(frame) - 1) // row_bytes
    ints = np.frombuffer(
        frame, dtype="<i8", count=count * REPLY_INT_COLS, offset=1
    ).reshape(count, REPLY_INT_COLS)
    floats = np.frombuffer(
        frame,
        dtype="<f8",
        count=count * REPLY_FLOAT_COLS,
        offset=1 + 8 * count * REPLY_INT_COLS,
    ).reshape(count, REPLY_FLOAT_COLS)
    return ints, floats


def control_frame(payload: Dict) -> bytes:
    return TAG_CONTROL + pickle.dumps(payload)


def parse_control(frame: bytes) -> Dict:
    return pickle.loads(frame[1:])


def _phase_flags(served: ServedPhase, fleet_retreat: bool) -> int:
    flags = 0
    if served.switched:
        flags |= FLAG_SWITCHED
    if served.batched:
        flags |= FLAG_BATCHED
    if served.degraded:
        flags |= FLAG_DEGRADED
    if served.margin_fallback:
        flags |= FLAG_MARGIN_FALLBACK
    if fleet_retreat:
        flags |= FLAG_FLEET_RETREAT
    return flags


class _WorkerRuntime:
    """The scheduler, guard, bus and registry state of one worker."""

    def __init__(
        self,
        worker_id: int,
        segment: str,
        bus: Optional[FleetBus],
        config: Dict,
    ):
        self.worker_id = worker_id
        # Baseline before the attach so deltas isolate this worker's own
        # parsing (under fork the parent's counters are inherited).
        self.parse_baseline = parse_counters()
        self.handle = ModeTable.from_shared(segment)
        table = self.handle.table
        guard = None
        schedule_dict = config.get("schedule")
        if schedule_dict is not None:
            from repro.faults.environment import SiliconEnvironment
            from repro.faults.events import FaultSchedule
            from repro.serve.guard import MarginGuard

            guard = MarginGuard(
                table,
                SiliconEnvironment(FaultSchedule.from_dict(schedule_dict)),
                headroom_ps=float(config.get("headroom_ps", 0.0)),
            )
        elif config.get("guard") and table.has_margins:
            from repro.serve.guard import MarginGuard

            guard = MarginGuard(
                table, headroom_ps=float(config.get("headroom_ps", 0.0))
            )
        self.guard = guard
        # Closed-loop recalibration: only the worker that owns an
        # injected fault schedule probes (its environment is the one
        # being instrumented); every other guarded peer *adopts* the
        # poster's committed state over the bus, so one canary serves
        # the whole die.
        self.recal = None
        recal_interval = float(config.get("recal_interval_ns") or 0.0)
        if (
            guard is not None
            and recal_interval > 0.0
            and schedule_dict is not None
            and table.has_margins
        ):
            from repro.serve.recal import RecalibrationLoop

            self.recal = RecalibrationLoop(
                guard,
                recal_interval,
                bias_ps=float(config.get("recal_bias_ps", 2.0)),
                readvance_probes=int(config.get("recal_readvance", 3)),
                seed=int(config.get("recal_seed", 0)),
            )
        self.scheduler = ModeScheduler(
            table,
            num_generators=int(config.get("num_generators", 2)),
            policy=str(config.get("policy", "greedy")),
            policy_kwargs=dict(config.get("policy_params") or {}),
            max_queue_depth=int(config.get("max_queue_depth", 8)),
            guard=guard,
            engine=config.get("engine"),
            recal=self.recal,
        )
        self.bus = bus
        self.retreat_budget = int(config.get("retreat_budget", 32))
        self.retreat_left = 0
        self.last_epoch = bus.epoch if bus is not None else 0
        # Recal epochs start at 0 so a state posted before this worker
        # spawned is adopted at its very first poll.
        self.last_recal_epoch = 0
        self._posted_recal_epoch = 0
        self.operators: Dict[int, str] = {}

    # -- serving -------------------------------------------------------------

    def _poll_bus(self) -> None:
        if self.bus is None:
            return
        # Hot path: one shared int64 load per channel decides "nothing
        # new"; full reads only happen on a transition.
        if self.bus.recal_epoch != self.last_recal_epoch:
            self._sync_margins()
        if self.bus.epoch == self.last_epoch:
            return
        epoch, _, origin = self.bus.read()
        self.last_epoch = epoch
        if origin != self.worker_id:
            self.scheduler.telemetry.bump("fleet_alerts")
            self.retreat_left = self.retreat_budget

    def _sync_margins(self) -> None:
        """Adopt a peer's committed learner state from the bus."""
        epoch, estimates, admissible, origin = self.bus.read_margins()
        if origin == self.worker_id or self.guard is None:
            self.last_recal_epoch = epoch
            return
        learner = self.guard.learner
        if learner is None:
            if not self.guard.table.has_margins:
                self.last_recal_epoch = epoch
                return
            from repro.serve.recal import MarginLearner

            learner = MarginLearner(self.guard.table)
            self.guard.attach_learner(learner)
        learner.adopt(estimates, admissible, epoch)
        self.last_recal_epoch = epoch
        self.scheduler.telemetry.bump("fleet_margin_syncs")

    def _post_margins(self) -> None:
        """Publish this worker's freshly committed learner state.

        The bus epoch the post returns becomes the learner's epoch --
        the fleet-wide identity of the state -- so the origin and every
        adopting peer report the same ``recal_epoch``.
        """
        learner = self.recal.learner
        estimates, admissible = learner.state_arrays()
        bus_epoch = self.bus.post_margins(
            estimates, admissible, self.worker_id
        )
        learner.epoch = bus_epoch
        self._posted_recal_epoch = bus_epoch
        self.last_recal_epoch = bus_epoch

    def _post_alert(self, served: ServedPhase) -> None:
        if self.bus is None:
            return
        kind = KIND_MARGIN_EROSION
        if self.guard is not None:
            active = [
                e
                for e in self.guard.environment.schedule.active(
                    served.decided_at_ns
                )
                if e.is_silicon
            ]
            if active:
                kind = active[0].kind
        self.last_epoch = self.bus.post(kind, self.worker_id)

    def serve_batch(self, triples: np.ndarray) -> bytes:
        if self.guard is None and self.scheduler.serve_engine == "batch":
            # No guard means no per-request alert posting, so the only
            # per-request side effect left is the bus poll -- which the
            # fast path coarsens to frame granularity (an alert landing
            # mid-frame is a real-time race either way).
            return self._serve_batch_fast(triples)
        # Accumulate plain-python rows and convert once at the end:
        # per-row ``ndarray[row] = [...]`` assignments here were the
        # worker's second-largest per-request cost after the scheduler.
        int_rows = []
        float_rows = []
        operators = self.operators
        for op_id, bits, cycles in triples.tolist():
            request = ServeRequest(operators[op_id], bits, cycles)
            self._poll_bus()
            if self.retreat_left > 0:
                self.retreat_left -= 1
                self.scheduler.telemetry.bump("fleet_retreats")
                served = self.scheduler.submit_degraded(request)
                retreat = True
            else:
                served = self.scheduler.submit(request)
                retreat = False
                if served.margin_fallback:
                    self._post_alert(served)
                if (
                    self.recal is not None
                    and self.bus is not None
                    and self.recal.learner.epoch != self._posted_recal_epoch
                ):
                    self._post_margins()
            int_rows.append(
                (
                    served.served_bits,
                    _phase_flags(served, retreat),
                    served.transition_retries,
                    self.last_epoch,
                    self.last_recal_epoch,
                )
            )
            float_rows.append(
                (
                    served.compute_energy_j,
                    served.transition_energy_j,
                    served.settle_ns,
                    served.queue_wait_ns,
                    served.decided_at_ns,
                )
            )
        return encode_replies(
            np.array(int_rows, dtype="<i8").reshape(-1, REPLY_INT_COLS),
            np.array(float_rows, dtype="<f8").reshape(-1, REPLY_FLOAT_COLS),
        )

    def _serve_batch_fast(self, triples: np.ndarray) -> bytes:
        """Batched frame serving: one kernel call fills the reply arrays.

        While retreating, requests are still served one by one (the bus
        must be re-polled before every degraded decision); the moment
        the retreat budget is spent, the rest of the frame goes through
        :meth:`~repro.serve.scheduler.ModeScheduler.submit_batch_arrays`
        (lookahead clipped to zero so decisions match the per-request
        loop bit for bit) and the reply columns are filled vectorized.
        """
        count = len(triples)
        ints = np.empty((count, REPLY_INT_COLS), dtype="<i8")
        floats = np.empty((count, REPLY_FLOAT_COLS), dtype="<f8")
        operators = self.operators
        rows = triples.tolist()
        start = 0
        while start < count:
            self._poll_bus()
            if self.retreat_left > 0:
                op_id, bits, cycles = rows[start]
                self.retreat_left -= 1
                self.scheduler.telemetry.bump("fleet_retreats")
                served = self.scheduler.submit_degraded(
                    ServeRequest(operators[op_id], bits, cycles)
                )
                ints[start] = (
                    served.served_bits,
                    _phase_flags(served, True),
                    served.transition_retries,
                    self.last_epoch,
                    self.last_recal_epoch,
                )
                floats[start] = (
                    served.compute_energy_j,
                    served.transition_energy_j,
                    served.settle_ns,
                    served.queue_wait_ns,
                    served.decided_at_ns,
                )
                start += 1
                continue
            names = [operators[op_id] for op_id, _, _ in rows[start:]]
            result = self.scheduler.submit_batch_arrays(
                names,
                triples[start:, 1],
                triples[start:, 2],
                upcoming_cap=0,
            )
            tail = slice(start, count)
            ints[tail, 0] = result.served_bits
            ints[tail, 1] = (
                result.switched * FLAG_SWITCHED
                | result.batched * FLAG_BATCHED
                | result.degraded * FLAG_DEGRADED
                | result.margin_fallback * FLAG_MARGIN_FALLBACK
            )
            ints[tail, 2] = result.transition_retries
            ints[tail, 3] = self.last_epoch
            ints[tail, 4] = self.last_recal_epoch
            floats[tail, 0] = result.compute_energy_j
            floats[tail, 1] = result.transition_energy_j
            floats[tail, 2] = result.settle_ns
            floats[tail, 3] = result.queue_wait_ns
            floats[tail, 4] = result.decided_at_ns
            break
        return encode_replies(ints, floats)

    # -- control -------------------------------------------------------------

    def stats(self) -> Dict:
        counters = parse_counters()
        return {
            "worker_id": self.worker_id,
            "telemetry": self.scheduler.telemetry.snapshot(),
            "parse": {
                key: counters[key] - self.parse_baseline[key]
                for key in counters
            },
            "operators": sorted(self.operators.values()),
            "attach_count": self.handle.attach_count,
            "epoch": self.last_epoch,
            "recal_epoch": self.last_recal_epoch,
            "recal": self.recal.snapshot() if self.recal else None,
        }


def worker_main(
    conn, worker_id: int, segment: str, bus: Optional[FleetBus], config: Dict
) -> None:
    """Process entry point: serve frames until ``shutdown`` or EOF."""
    runtime = _WorkerRuntime(worker_id, segment, bus, config)
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except EOFError:  # router died; nothing to clean up but us
                break
            tag = frame[:1]
            if tag == TAG_BATCH:
                conn.send_bytes(runtime.serve_batch(decode_batch(frame)))
                continue
            control = parse_control(frame)
            command = control.get("cmd")
            if command == "register":
                runtime.operators.update(
                    {int(k): str(v) for k, v in control["ops"].items()}
                )
                conn.send_bytes(control_frame({"ok": True}))
            elif command == "stats":
                conn.send_bytes(control_frame(runtime.stats()))
            elif command == "shutdown":
                conn.send_bytes(control_frame({"ok": True}))
                break
            else:
                conn.send_bytes(
                    control_frame(
                        {"ok": False, "error": f"unknown cmd {command!r}"}
                    )
                )
    finally:
        runtime.handle.close()
        conn.close()
