"""The fleet front end: consistent-hash routing over worker processes.

:class:`FleetRouter` is the process that owns everything shared:

* it exports the compiled :class:`~repro.serve.table.ModeTable` into a
  shared-memory segment **once** (:meth:`ModeTable.to_shared`) and hands
  workers only the segment *name* -- N workers, one copy of the dense
  transition/margin matrices;
* it spawns N :func:`~repro.fleet.worker.worker_main` processes, each
  with a private duplex pipe, and places operators on them with a
  :class:`~repro.fleet.hashing.ConsistentHashRing` -- every operator's
  requests reach one worker, in order, which is what keeps fleet phase
  decisions bit-identical to a single-process scheduler;
* it **batches** compatible same-worker requests (up to
  ``batch_window`` per frame, ``max_inflight`` frames pipelined per
  worker), amortizing pipe round-trips so added workers translate into
  throughput instead of IPC overhead;
* it owns the :class:`~repro.fleet.bus.FleetBus` the workers use to
  propagate margin alerts, and tears the segment down (``unlink``) at
  :meth:`stop`.

A worker death (crash injection, OOM kill) is handled by **failover**:
the dead worker leaves the ring, its unanswered requests are re-hashed
onto the survivors in their original order, and its operators restart
from scheduler power-on state there -- degraded continuity, never an
exception on the caller.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from itertools import islice
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import AUTO_WORKERS, resolve_env_count
from repro.fleet.bus import FleetBus
from repro.fleet.hashing import DEFAULT_VNODES, ConsistentHashRing
from repro.fleet.worker import (
    FLAG_BATCHED,
    FLAG_DEGRADED,
    FLAG_FLEET_RETREAT,
    FLAG_MARGIN_FALLBACK,
    FLAG_SWITCHED,
    TAG_BATCH,
    control_frame,
    decode_replies,
    encode_batch,
    parse_control,
    worker_main,
)
from repro.serve.compiled import resolve_serve_engine
from repro.serve.table import ModeTable, SharedModeTable

#: Environment override consulted when ``workers`` is AUTO_WORKERS.
FLEET_WORKERS_ENV = "REPRO_FLEET_WORKERS"


def resolve_fleet_workers(requested: int) -> int:
    """Fleet-size policy: AUTO consults $REPRO_FLEET_WORKERS, then CPUs."""
    return resolve_env_count(requested, FLEET_WORKERS_ENV)


class FleetError(RuntimeError):
    """The fleet cannot make progress (e.g. every worker died)."""


class FleetServedPhase(NamedTuple):
    """One served request as seen through the fleet wire protocol.

    A ``NamedTuple`` rather than a dataclass: the router materializes
    one per request on the reply hot path, and tuple construction is
    what keeps its per-request overhead below the workers' decision
    cost (the saturation benchmark's scaling floor depends on it).
    """

    operator: str
    required_bits: int
    served_bits: int
    compute_energy_j: float
    transition_energy_j: float
    settle_ns: float
    queue_wait_ns: float
    switched: bool
    batched: bool
    degraded: bool
    margin_fallback: bool
    fleet_retreat: bool
    transition_retries: int
    decided_at_ns: float
    epoch_seen: int
    recal_epoch: int
    worker_id: int


class _WorkerHandle:
    """Router-side state of one worker process."""

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.known_ops: set = set()
        #: FIFO of expected replies: ("ack", None) or ("batch", items).
        self.inflight: deque = deque()
        self.queue: deque = deque()

    @property
    def can_send(self) -> bool:
        return bool(self.queue)


class FleetRouter:
    """Routes accuracy-mode requests across a worker-process fleet."""

    def __init__(
        self,
        table: ModeTable,
        workers: int = AUTO_WORKERS,
        batch_window: int = 16,
        max_inflight: int = 2,
        num_generators: int = 2,
        policy: str = "greedy",
        policy_params: Optional[Dict] = None,
        max_queue_depth: int = 8,
        guard: bool = False,
        headroom_ps: float = 0.0,
        retreat_budget: int = 32,
        schedules: Optional[Dict[int, Dict]] = None,
        vnodes: int = DEFAULT_VNODES,
        segment_name: Optional[str] = None,
        engine: Optional[str] = None,
        recal_interval_ns: float = 0.0,
        recal_bias_ps: float = 2.0,
        recal_readvance: int = 3,
        recal_seed: int = 0,
    ):
        if batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if retreat_budget < 1:
            raise ValueError("retreat_budget must be >= 1")
        if recal_interval_ns < 0.0:
            raise ValueError("recal_interval_ns must be >= 0")
        self.num_workers = resolve_fleet_workers(workers)
        self.batch_window = batch_window
        self.max_inflight = max_inflight
        self.retreat_budget = retreat_budget
        self._config = {
            "num_generators": num_generators,
            "policy": policy,
            "policy_params": dict(policy_params or {}),
            "max_queue_depth": max_queue_depth,
            "guard": guard,
            "headroom_ps": headroom_ps,
            "retreat_budget": retreat_budget,
            # Resolved here (not in the workers) so a bad request or env
            # override fails in the router process, eagerly, and every
            # worker is guaranteed to run the same kernel.
            "engine": resolve_serve_engine(engine),
            # Canary recalibration: workers that own an injected fault
            # schedule run the probe loop; guarded peers adopt committed
            # margin states over the bus (see repro.fleet.worker).
            "recal_interval_ns": recal_interval_ns,
            "recal_bias_ps": recal_bias_ps,
            "recal_readvance": recal_readvance,
            "recal_seed": recal_seed,
        }
        self._schedules = dict(schedules or {})
        self._vnodes = vnodes
        self._segment_name = segment_name
        self._table = table
        self._shared: Optional[SharedModeTable] = None
        self._bus: Optional[FleetBus] = None
        self._workers: Dict[int, _WorkerHandle] = {}
        self._ring: Optional[ConsistentHashRing] = None
        self._op_ids: Dict[str, int] = {}
        self._op_names: Dict[int, str] = {}
        self._route: Dict[str, _WorkerHandle] = {}
        self._required: Dict[int, Tuple[int, int]] = {}
        self.failovers = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._workers:
            raise RuntimeError("fleet already started")
        self._shared = self._table.to_shared(name=self._segment_name)
        self._bus = FleetBus(num_modes=len(self._table.modes))
        for worker_id in range(self.num_workers):
            self._spawn(worker_id)
        self._ring = ConsistentHashRing(
            range(self.num_workers), vnodes=self._vnodes
        )

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        config = dict(self._config)
        if worker_id in self._schedules:
            config["schedule"] = self._schedules[worker_id]
        process = multiprocessing.Process(
            target=worker_main,
            args=(child_conn, worker_id, self._shared.name, self._bus, config),
            name=f"repro-fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end so a dead worker
        # surfaces as EOF instead of a hang.
        child_conn.close()
        self._workers[worker_id] = _WorkerHandle(
            worker_id, process, parent_conn
        )

    def stop(self) -> None:
        """Shut workers down, then unlink the shared segment."""
        for handle in self._workers.values():
            try:
                handle.conn.send_bytes(control_frame({"cmd": "shutdown"}))
                handle.conn.recv_bytes()
            except (BrokenPipeError, EOFError, OSError):
                pass
            handle.conn.close()
        for handle in self._workers.values():
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck child
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        self._workers.clear()
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None

    def __enter__(self) -> "FleetRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    @property
    def segment_name(self) -> str:
        if self._shared is None:
            raise RuntimeError("fleet is not running")
        return self._shared.name

    @property
    def bus(self) -> FleetBus:
        if self._bus is None:
            raise RuntimeError("fleet is not running")
        return self._bus

    @property
    def alive_workers(self) -> List[int]:
        return sorted(self._workers)

    def worker_for(self, operator: str) -> int:
        if self._ring is None:
            raise RuntimeError("fleet is not running")
        return self._ring.worker_for(operator)

    @property
    def propagation_bound(self) -> int:
        """Max requests the fleet may decide before every peer retreats.

        An alert lands on the bus as part of deciding one request;
        every other worker polls the epoch before each decision, so the
        only requests that can still be decided un-retreated are the
        ones already *being* decided fleet-wide plus one more per peer:
        bounded by workers x max_inflight x batch_window.
        """
        return self.num_workers * self.max_inflight * self.batch_window

    # -- serving -------------------------------------------------------------

    def submit(
        self, operator: str, required_bits: int, cycles: int
    ) -> FleetServedPhase:
        """Serve one request (a batch of one; tests and trickle use)."""
        return self.submit_many([(operator, required_bits, cycles)])[0]

    def submit_many(
        self, requests: Sequence[Tuple[str, int, int]]
    ) -> List[FleetServedPhase]:
        """Serve a request list; replies come back in request order.

        Requests are partitioned per owning worker (preserving each
        operator's relative order), chopped into ``batch_window`` frames
        and pipelined ``max_inflight`` deep per worker.
        """
        if self._ring is None:
            raise RuntimeError("fleet is not running")
        results: List[Optional[FleetServedPhase]] = [None] * len(requests)
        # Operator -> handle routes are sticky between failovers, so
        # cache them: one blake2b ring walk per *operator*, not per
        # request (_failover clears the cache when the ring changes).
        route = self._route
        for index, (operator, bits, cycles) in enumerate(requests):
            op_id = self._op_id(operator)
            self._required[index] = (op_id, bits)
            worker = route.get(operator)
            if worker is None:
                worker = self._workers.get(self._ring.worker_for(operator))
                if worker is None:  # pragma: no cover - ring/worker raced
                    raise FleetError("request routed to a dead worker")
                route[operator] = worker
            worker.queue.append((index, op_id, bits, cycles))
        try:
            self._pump(results)
        finally:
            self._required.clear()
        return results  # type: ignore[return-value]

    def _op_id(self, operator: str) -> int:
        if operator not in self._op_ids:
            op_id = len(self._op_ids)
            self._op_ids[operator] = op_id
            self._op_names[op_id] = operator
        return self._op_ids[operator]

    def _pump(self, results: List[Optional[FleetServedPhase]]) -> None:
        while True:
            for handle in list(self._workers.values()):
                self._fill_pipeline(handle)
            waiting = [
                handle
                for handle in self._workers.values()
                if handle.inflight
            ]
            if not waiting:
                if any(h.queue for h in self._workers.values()):
                    # Queues non-empty but nothing in flight: every
                    # send failed; _fill_pipeline already failed over.
                    continue  # pragma: no cover - transient
                return
            ready = connection_wait([h.conn for h in waiting])
            for handle in list(waiting):
                if handle.conn not in ready:
                    continue
                try:
                    frame = handle.conn.recv_bytes()
                except (EOFError, OSError):
                    self._failover(handle)
                    continue
                self._absorb(handle, frame, results)

    def _fill_pipeline(self, handle: _WorkerHandle) -> None:
        while handle.queue and len(handle.inflight) < self.max_inflight:
            # Only the window about to be framed needs its ops known;
            # scanning the whole queue here would be O(queue^2) across a
            # large submit_many.
            window = min(self.batch_window, len(handle.queue))
            unknown = {
                op_id
                for _, op_id, _, _ in islice(handle.queue, window)
                if op_id not in handle.known_ops
            }
            if unknown:
                try:
                    handle.conn.send_bytes(
                        control_frame(
                            {
                                "cmd": "register",
                                "ops": {
                                    op_id: self._op_names[op_id]
                                    for op_id in unknown
                                },
                            }
                        )
                    )
                except (BrokenPipeError, OSError):
                    self._failover(handle)
                    return
                handle.known_ops |= unknown
                handle.inflight.append(("ack", None))
                continue
            items = [
                handle.queue.popleft()
                for _ in range(min(self.batch_window, len(handle.queue)))
            ]
            triples = np.array(
                [(op_id, bits, cycles) for _, op_id, bits, cycles in items],
                dtype="<i8",
            ).reshape(-1, 3)
            try:
                handle.conn.send_bytes(encode_batch(triples))
            except (BrokenPipeError, OSError):
                # The popped items are in neither queue nor inflight:
                # restore them before failover re-hashes the queue.
                handle.queue.extendleft(reversed(items))
                self._failover(handle)
                return
            handle.inflight.append(("batch", items))

    def _absorb(
        self,
        handle: _WorkerHandle,
        frame: bytes,
        results: List[Optional[FleetServedPhase]],
    ) -> None:
        kind, items = handle.inflight.popleft()
        if frame[:1] != TAG_BATCH:
            payload = parse_control(frame)
            if kind != "ack" or not payload.get("ok"):
                raise FleetError(
                    f"worker {handle.worker_id} broke protocol: "
                    f"expected {kind} reply, got {payload!r}"
                )
            return
        if kind != "batch":  # pragma: no cover - protocol violation
            raise FleetError(
                f"worker {handle.worker_id} sent a batch reply to an "
                f"{kind} frame"
            )
        ints, floats = decode_replies(frame)
        # tolist() converts each numpy row to plain python scalars in
        # one C call; per-element int()/float() casts here dominated the
        # router's per-request cost before.
        op_names = self._op_names
        worker_id = handle.worker_id
        for (index, op_id, bits, _), int_row, float_row in zip(
            items, ints.tolist(), floats.tolist()
        ):
            served_bits, flags, retries, epoch_seen, recal_epoch = int_row
            compute_e, transition_e, settle, queue_wait, decided = float_row
            results[index] = FleetServedPhase(
                op_names[op_id],
                bits,
                served_bits,
                compute_e,
                transition_e,
                settle,
                queue_wait,
                bool(flags & FLAG_SWITCHED),
                bool(flags & FLAG_BATCHED),
                bool(flags & FLAG_DEGRADED),
                bool(flags & FLAG_MARGIN_FALLBACK),
                bool(flags & FLAG_FLEET_RETREAT),
                retries,
                decided,
                epoch_seen,
                recal_epoch,
                worker_id,
            )

    def _failover(self, handle: _WorkerHandle) -> None:
        """Remove a dead worker; re-hash its unanswered work in order."""
        if handle.worker_id not in self._workers:
            return
        del self._workers[handle.worker_id]
        self._route.clear()
        self.failovers += 1
        if not self._workers:
            raise FleetError("every fleet worker died")
        self._ring.remove(handle.worker_id)
        handle.conn.close()
        handle.process.join(timeout=5.0)
        orphaned: List[Tuple[int, int, int, int]] = []
        for kind, items in handle.inflight:
            if kind == "batch":
                orphaned.extend(items)
        orphaned.extend(handle.queue)
        for index, op_id, bits, cycles in orphaned:
            operator = self._op_names[op_id]
            target = self._workers[self._ring.worker_for(operator)]
            target.queue.append((index, op_id, bits, cycles))

    # -- telemetry -----------------------------------------------------------

    def stats(self) -> Dict:
        """Aggregated fleet telemetry (only between submit batches)."""
        if any(h.inflight or h.queue for h in self._workers.values()):
            raise RuntimeError("stats() while requests are in flight")
        per_worker = []
        for handle in list(self._workers.values()):
            try:
                handle.conn.send_bytes(control_frame({"cmd": "stats"}))
                per_worker.append(parse_control(handle.conn.recv_bytes()))
            except (BrokenPipeError, EOFError, OSError):
                self._failover(handle)
        counters: Dict[str, int] = {}
        for stats in per_worker:
            for key, value in stats["telemetry"]["counters"].items():
                counters[key] = counters.get(key, 0) + value
        return {
            "workers": per_worker,
            "counters": counters,
            "num_workers": len(per_worker),
            "failovers": self.failovers,
            "segment": self._shared.name if self._shared else None,
            "segment_bytes": (
                self._shared.size_bytes if self._shared else 0
            ),
            "attach_count": (
                self._shared.attach_count if self._shared else 0
            ),
            "bus_epoch": self._bus.epoch if self._bus else 0,
            "bus_recal_epoch": (
                self._bus.recal_epoch if self._bus else 0
            ),
        }
