"""Consistent hashing of operator instances onto fleet workers.

The fleet's correctness argument rests on one property: **every request
for an operator lands on the same worker, in submission order**.  Each
worker then runs the stock :class:`~repro.serve.scheduler.ModeScheduler`,
whose per-operator decisions depend only on that operator's request
sequence -- so the fleet's phase decisions are bit-identical to a single
scheduler fed the same trace (the differential suite locks this in).

A :class:`ConsistentHashRing` provides that property *and* cheap
failover: workers hash to ``vnodes`` points on a ring, operators hash to
a point and walk clockwise to the next worker.  Removing a dead worker
only remaps the operators that lived on it; every other operator keeps
its worker, its scheduler state, and its decision stream.

Hashes are :mod:`hashlib` (blake2b) over stable strings, so placement is
deterministic across processes, runs and platforms -- no ``PYTHONHASHSEED``
dependence.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence

#: Virtual nodes per worker.  64 keeps the max/min operator-load ratio
#: of a random operator population within ~15% at small fleet sizes.
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """64-bit deterministic hash of *text* (blake2b, platform-stable)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps string keys (operator names) to integer worker ids."""

    def __init__(
        self, workers: Sequence[int], vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, int] = {}
        self._workers: List[int] = []
        for worker in workers:
            self.add(worker)
        if not self._workers:
            raise ValueError("need at least one worker")

    @property
    def workers(self) -> List[int]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: int) -> bool:
        return worker in self._workers

    def add(self, worker: int) -> None:
        if worker in self._workers:
            raise ValueError(f"worker {worker} is already on the ring")
        self._workers.append(worker)
        for vnode in range(self.vnodes):
            point = stable_hash(f"worker-{worker}/vnode-{vnode}")
            # Ties are astronomically unlikely but must stay
            # deterministic: lowest worker id wins the point.
            if point in self._owners:  # pragma: no cover
                self._owners[point] = min(self._owners[point], worker)
                continue
            self._owners[point] = worker
            index = bisect_right(self._points, point)
            self._points.insert(index, point)

    def remove(self, worker: int) -> None:
        if worker not in self._workers:
            raise ValueError(f"worker {worker} is not on the ring")
        if len(self._workers) == 1:
            raise ValueError("cannot remove the last worker")
        self._workers.remove(worker)
        self._points = [
            p for p in self._points if self._owners[p] != worker
        ]
        self._owners = {
            p: w for p, w in self._owners.items() if w != worker
        }

    def worker_for(self, key: str) -> int:
        """The worker owning *key*: next ring point clockwise."""
        point = stable_hash(key)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def load(self, keys: Sequence[str]) -> Dict[int, int]:
        """Keys-per-worker tally (diagnostics and benchmark balance)."""
        tally = {worker: 0 for worker in self._workers}
        for key in keys:
            tally[self.worker_for(key)] += 1
        return tally
