"""repro -- dynamic accuracy operators by runtime back bias.

A from-scratch Python reproduction of Jahier Pagliari et al., *A
Methodology for the Design of Dynamic Accuracy Operators by Runtime Back
Bias* (DATE 2017), including every substrate the flow needs: a synthetic
28nm-FDSOI-like standard-cell library, gate-level operator generators,
logic simulation, placement with Vth-domain guardband insertion, static
timing analysis with case-analysis and batched back-bias evaluation, power
analysis, and the exhaustive knob exploration the paper proposes.

Quick start::

    from repro import quick_flow
    from repro.operators import booth_multiplier
    from repro.techlib.library import Library

    library = Library()
    base, domained, proposed, dvas_fbb = quick_flow(
        lambda: booth_multiplier(library), library, grid=(2, 2)
    )
    for point in proposed.pareto():
        print(point.describe())
"""

from repro.core import (
    ExhaustiveExplorer,
    ExplorationSettings,
    OperatingPoint,
    dvas_explore,
    implement_base,
    implement_with_domains,
)
from repro.pnr.grid import GridPartition
from repro.serve import ModeTable, compile_mode_table
from repro.techlib.library import Library

__version__ = "1.1.0"


def quick_flow(netlist_factory, library, grid=(2, 2), settings=None):
    """One-call convenience: implement + explore a design both ways.

    Returns ``(base_design, domained_design, proposed_result,
    dvas_fbb_result)``.  See the package docstring for an example; the
    examples directory shows the full-control version.
    """
    settings = settings or ExplorationSettings()
    partition = GridPartition(*grid)
    base = implement_base(netlist_factory, library)
    domained = implement_with_domains(
        netlist_factory, library, partition, constraint=base.constraint
    )
    proposed = ExhaustiveExplorer(domained).run(settings)
    dvas_fbb = dvas_explore(base, fbb=True, settings=settings)
    return base, domained, proposed, dvas_fbb


__all__ = [
    "ExhaustiveExplorer",
    "ExplorationSettings",
    "OperatingPoint",
    "dvas_explore",
    "implement_base",
    "implement_with_domains",
    "GridPartition",
    "Library",
    "ModeTable",
    "compile_mode_table",
    "quick_flow",
    "__version__",
]
