"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``explore``      -- implement a design with Vth domains and run the
                      exhaustive optimization; prints the Pareto frontier
                      and optionally saves the mode table as JSON.
* ``compare``      -- Fig. 5-style comparison of the proposed method
                      against DVAS (NoBB / FBB) on one design.
* ``report-timing``-- print the worst timing paths of an implemented
                      design at a chosen corner.
* ``characterize`` -- dump the synthetic library at a corner, as a text
                      table or as a Liberty (.lib) file.
* ``compile-table``-- implement + explore a design and freeze the result
                      into the serving artifact (a versioned ModeTable
                      JSON with a precomputed transition-cost matrix).
* ``serve``        -- run the asyncio accuracy server from a compiled
                      table; ``--soak N`` drives N requests through the
                      socket and exits (the CI smoke path).
* ``replay``       -- replay a workload trace through the serve
                      scheduler under a chosen policy.
* ``gen-traces``   -- generate the seeded workload-trace suite (bursty /
                      diurnal / phase_structured / adversarial_flapping)
                      as versioned JSON artifacts.
* ``train-policy`` -- train the offline fitted-Q mode-selection policy
                      on a trace suite and embed it in a ModeTable.
* ``chaos``        -- replay a seeded fault schedule against a
                      margin-guarded serve session and a crash-resilient
                      sharded sweep; exits non-zero if any invariant
                      broke (the CI chaos-smoke path).

Sweep commands (``explore``, ``compare``, ``compile-table``, ``chaos``)
shut down gracefully on SIGINT/SIGTERM: the current shard finishes, every
completed shard is already flushed to the persistent cache, and the exit
message says how to resume.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import Callable, Optional

import numpy as np

from repro.core.config import ExplorationSettings
from repro.core.dvas import dvas_explore
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import (
    implement_base,
    implement_with_domains,
    select_clock_for,
)
from repro.core.report import format_pareto_table, format_savings
from repro.operators import (
    adequate_adder,
    booth_multiplier,
    cordic_rotator,
    divider,
    fft_butterfly,
    fir_filter,
    l1_norm,
)
from repro.operators.fir import FirParameters
from repro.pnr.grid import GridPartition
from repro.techlib.characterize import characterize, default_corner_grid
from repro.techlib.library import Library


def _design_factory(name: str, width: int, library: Library) -> Callable:
    builders = {
        "booth": lambda: booth_multiplier(library, width),
        "butterfly": lambda: fft_butterfly(library, width),
        "fir": lambda: fir_filter(
            library, FirParameters(taps=30, width=width)
        ),
        "adder": lambda: adequate_adder(library, width),
        "l1norm": lambda: l1_norm(library, elements=4, width=width),
        "cordic": lambda: cordic_rotator(
            library, width, iterations=min(12, width)
        ),
        "booth-pipelined": lambda: booth_multiplier(
            library, width, pipelined=True
        ),
        "divider": lambda: divider(library, width),
    }
    try:
        return builders[name]
    except KeyError:
        raise SystemExit(
            f"unknown design {name!r}; choose from {sorted(builders)}"
        )


def _parse_grid(text: str) -> GridPartition:
    try:
        rows, cols = text.lower().split("x")
        return GridPartition(int(rows), int(cols))
    except (ValueError, TypeError):
        raise SystemExit(f"bad grid {text!r}; expected e.g. 2x2")


@contextlib.contextmanager
def _graceful_sweeps():
    """Arm SIGINT/SIGTERM to stop the sharded engine cooperatively."""
    from repro.parallel.engine import interrupt_event

    event = interrupt_event()
    event.clear()
    previous = {}

    def handler(signum, frame):
        if event.is_set():  # second signal: give up politely
            raise KeyboardInterrupt
        event.set()
        print(
            "\ninterrupt received: finishing the running shard(s) and "
            "flushing completed work...",
            file=sys.stderr,
        )

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except ValueError:  # pragma: no cover - not the main thread
            pass
    try:
        yield event
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
        event.clear()


def _settings(args) -> ExplorationSettings:
    return ExplorationSettings(
        bitwidths=tuple(range(1, args.width + 1)),
        workers=getattr(args, "workers", 0),
        cache=getattr(args, "cache", False) or getattr(args, "resume", False),
        cache_dir=getattr(args, "cache_dir", None),
        sim_engine=getattr(args, "sim_engine", "auto"),
        sta_engine=getattr(args, "sta_engine", "auto"),
    )


def cmd_explore(args) -> int:
    library = Library()
    factory = _design_factory(args.design, args.width, library)
    constraint = select_clock_for(factory, library)
    design = implement_with_domains(
        factory, library, _parse_grid(args.grid), constraint=constraint
    )
    print(design.describe())
    result = ExhaustiveExplorer(design).run(_settings(args))
    print(
        f"explored {result.points_evaluated} points, filtered "
        f"{result.filtered_fraction * 100:.1f}%, {result.runtime_s:.1f} s"
    )
    if result.cache_stats is not None:
        print(result.cache_stats.describe())
    for point in result.pareto():
        print(" ", point.describe())
    if args.output:
        from repro.io.results import save_exploration

        with open(args.output, "w") as stream:
            save_exploration(result, stream)
        print(f"mode table written to {args.output}")
    return 0


def cmd_compare(args) -> int:
    library = Library()
    factory = _design_factory(args.design, args.width, library)
    constraint = select_clock_for(factory, library)
    base = implement_base(factory, library, constraint=constraint)
    domained = implement_with_domains(
        factory, library, _parse_grid(args.grid), constraint=constraint
    )
    settings = _settings(args)
    proposed = ExhaustiveExplorer(domained).run(settings)
    nobb = dvas_explore(base, fbb=False, settings=settings)
    fbb = dvas_explore(base, fbb=True, settings=settings)
    print(base.describe())
    print(domained.describe())
    print(
        format_pareto_table(
            {
                "Proposed": proposed.best_per_bitwidth,
                "DVAS (NoBB)": nobb.best_per_bitwidth,
                "DVAS (FBB)": fbb.best_per_bitwidth,
            },
            settings.bitwidths,
        )
    )
    print()
    print(
        format_savings(
            fbb.best_per_bitwidth,
            proposed.best_per_bitwidth,
            settings.bitwidths,
        )
    )
    return 0


def cmd_report_timing(args) -> int:
    from repro.sta.engine import StaEngine
    from repro.sta.report_timing import report_timing

    library = Library()
    factory = _design_factory(args.design, args.width, library)
    design = implement_base(factory, library)
    print(design.describe())
    engine = StaEngine(design.timing_graph(), library)
    fbb_cells = np.full(
        len(design.netlist.cells), not args.nobb, dtype=bool
    )
    case = None
    if args.bits is not None:
        from repro.sta.caseanalysis import dvas_case

        case = dvas_case(design.netlist, args.bits)
    paths = report_timing(
        engine, design.constraint, args.vdd, fbb_cells,
        case=case, max_paths=args.paths,
    )
    for i, path in enumerate(paths):
        print(f"\n--- path {i + 1} (endpoint {path.endpoint_net}) ---")
        print(path.format_text())
    return 0


def cmd_cache(args) -> int:
    from repro.parallel.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        print(cache.disk_usage().describe())
        return 0
    removed = cache.clear()
    print(f"removed {removed} entries from {cache.directory}")
    return 0


def _implement_for(args):
    library = Library()
    factory = _design_factory(args.design, args.width, library)
    constraint = select_clock_for(factory, library)
    return implement_with_domains(
        factory, library, _parse_grid(args.grid), constraint=constraint
    )


def cmd_compile_table(args) -> int:
    from repro.core.runtime import BiasGeneratorModel
    from repro.io.results import load_exploration, save_mode_table
    from repro.serve.table import compile_mode_table

    design = _implement_for(args)
    print(design.describe())
    if args.exploration:
        with open(args.exploration) as stream:
            result = load_exploration(stream)
        if result.design_name.split("_")[0] not in design.netlist.name:
            print(
                f"warning: exploration was run on {result.design_name!r}, "
                f"compiling against {design.netlist.name!r}"
            )
    else:
        result = ExhaustiveExplorer(design).run(_settings(args))
    table = compile_mode_table(
        design,
        result,
        BiasGeneratorModel(),
        with_margins=args.margins,
        margin_samples=args.margin_samples,
    )
    print(table.describe())
    with open(args.output, "w") as stream:
        save_mode_table(table, stream)
    print(f"mode table compiled to {args.output}")
    return 0


def _load_table(path):
    from repro.io.results import load_mode_table

    with open(path) as stream:
        return load_mode_table(stream)


def _soak_requests(table, count, seed):
    """Deterministic request mix over three operator instances."""
    rng = np.random.default_rng(seed)
    bitwidths = table.bitwidths
    operators = ("op0", "op1", "op2")
    for index in range(count):
        yield (
            operators[index % len(operators)],
            int(rng.choice(bitwidths)),
            int(rng.integers(1_000, 20_000)),
        )


def _policy_kwargs(args):
    """Parse + validate the shared ``--policy`` / ``--policy-arg`` surface.

    Registry validation errors (unknown policy parameter, bad value) are
    user errors: re-raise as :class:`ServeError` so ``main`` exits 2 with
    the registry's message listing the policy's known parameters.
    """
    from repro.serve.errors import ServeError
    from repro.serve.policy import parse_policy_args, validate_policy_kwargs

    try:
        return validate_policy_kwargs(
            args.policy, parse_policy_args(args.policy_args)
        )
    except ValueError as error:
        raise ServeError(str(error)) from None


def _trace_workload(path):
    """Load a trace file (gen-traces artifact or legacy list) as phases."""
    from repro.serve.errors import ServeError
    from repro.traces import TraceError, load_trace_file

    try:
        return load_trace_file(path)
    except TraceError as error:
        raise ServeError(str(error)) from None


def cmd_serve(args) -> int:
    import asyncio
    import json as json_module

    from repro.serve.scheduler import ModeScheduler
    from repro.serve.server import AccuracyServer

    table = _load_table(args.table)
    print(table.describe())
    guard = None
    recal = None
    if args.recal_interval > 0.0:
        from repro.serve.guard import MarginGuard
        from repro.serve.recal import RecalibrationLoop

        if not table.has_margins:
            print(
                "--recal-interval needs a margined table; re-run "
                "`repro compile-table --margins`"
            )
            return 2
        guard = MarginGuard(table)
        recal = RecalibrationLoop(
            guard, args.recal_interval, seed=args.seed
        )
        print(
            f"recalibration loop attached (every "
            f"{args.recal_interval:.0f} ns of operator virtual time)"
        )
    scheduler = ModeScheduler(
        table,
        num_generators=args.generators,
        policy=args.policy,
        max_queue_depth=args.queue_depth,
        policy_kwargs=_policy_kwargs(args),
        engine=args.serve_engine,
        guard=guard,
        recal=recal,
    )
    server = AccuracyServer(
        scheduler, host=args.host, port=args.port, max_pending=args.max_pending
    )

    async def soak() -> dict:
        async with server:
            print(f"serving on {args.host}:{server.port}")
            # Machine-readable bound port: soak scripts pass --port 0
            # and scrape this line instead of racing for a free port.
            print(f"REPRO_SERVE_PORT={server.port}", flush=True)

            async def client(requests):
                reader, writer = await asyncio.open_connection(
                    args.host, server.port
                )
                try:
                    for op, bits, cycles in requests:
                        writer.write(
                            json_module.dumps(
                                {"op": op, "bits": bits, "cycles": cycles}
                            ).encode()
                            + b"\n"
                        )
                        await writer.drain()
                        response = json_module.loads(await reader.readline())
                        if "error" in response:
                            raise RuntimeError(response["error"])
                        if response["served_bits"] < bits:
                            raise RuntimeError(
                                f"served {response['served_bits']} bits "
                                f"for a {bits}-bit request"
                            )
                finally:
                    writer.close()
                    await writer.wait_closed()

            if args.trace:
                # A trace file drives a single-operator soak: the phase
                # stream is the workload, exactly as replay sees it.
                everything = [
                    ("op0", bits, cycles)
                    for bits, cycles in _trace_workload(args.trace)
                ]
            else:
                everything = list(
                    _soak_requests(table, args.soak, args.seed)
                )
            shard = max(1, len(everything) // args.clients)
            await asyncio.gather(
                *(
                    client(everything[i : i + shard])
                    for i in range(0, len(everything), shard)
                )
            )
            return server.stats()

    async def forever() -> None:
        async with server:
            print(f"serving on {args.host}:{server.port} (ctrl-c to stop)")
            print(f"REPRO_SERVE_PORT={server.port}", flush=True)
            while True:
                await asyncio.sleep(3600)

    if args.soak or args.trace:
        stats = asyncio.run(soak())
        counters = stats["counters"]
        print(
            f"soak complete: {counters['requests']} requests, "
            f"{counters['mode_switches']} switches, "
            f"{counters['degraded']} degraded, "
            f"{counters['accuracy_violations']} violations, "
            f"p99 latency {stats['latency_ns']['p99']:.0f} ns"
        )
        if recal is not None:
            print(
                f"recalibration: {recal.learner.epoch} epochs, "
                f"{recal.probes_run} probes, "
                f"{recal.learner.demotions} demotions / "
                f"{recal.learner.readvances} re-advances"
            )
        if args.stats_output:
            with open(args.stats_output, "w") as stream:
                json_module.dump(stats, stream, indent=2)
            print(f"telemetry written to {args.stats_output}")
        return 1 if counters["accuracy_violations"] else 0
    try:
        asyncio.run(forever())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _fleet_soak_requests(table, num_operators, count, seed):
    """Deterministic request mix over *num_operators* instances."""
    rng = np.random.default_rng(seed)
    bitwidths = table.bitwidths
    for index in range(count):
        yield (
            f"op{index % num_operators}",
            int(rng.choice(bitwidths)),
            int(rng.integers(1_000, 20_000)),
        )


def cmd_fleet_serve(args) -> int:
    import json as json_module

    from repro.fleet import FleetRouter

    table = _load_table(args.table)
    print(table.describe())
    router = FleetRouter(
        table,
        workers=args.workers,
        batch_window=args.batch_window,
        max_inflight=args.max_inflight,
        num_generators=args.generators,
        policy=args.policy,
        policy_params=_policy_kwargs(args),
        max_queue_depth=args.queue_depth,
        guard=args.guard,
        retreat_budget=args.retreat_budget,
        engine=args.serve_engine,
    )
    if args.trace:
        trace = [
            (f"op{index % args.operators}", bits, cycles)
            for index, (bits, cycles) in enumerate(
                _trace_workload(args.trace)
            )
        ]
    else:
        trace = list(
            _fleet_soak_requests(table, args.operators, args.soak, args.seed)
        )
    violations = 0
    with router:
        print(
            f"fleet of {router.num_workers} workers, shared segment "
            f"{router.segment_name}"
        )
        phases = []
        for offset in range(0, len(trace), args.chunk):
            phases.extend(
                router.submit_many(trace[offset : offset + args.chunk])
            )
        stats = router.stats()
    for phase in phases:
        if phase.served_bits < phase.required_bits:
            violations += 1
    json_reparses = sum(
        worker["parse"]["json"] for worker in stats["workers"]
    )
    counters = stats["counters"]
    print(
        f"fleet soak complete: {counters['requests']} requests over "
        f"{stats['num_workers']} workers, "
        f"{counters['mode_switches']} switches, "
        f"{counters['degraded']} degraded, "
        f"{counters.get('fleet_retreats', 0)} fleet retreats, "
        f"{violations} violations, "
        f"{json_reparses} worker JSON re-parses"
    )
    if args.stats_output:
        with open(args.stats_output, "w") as stream:
            json_module.dump(stats, stream, indent=2)
        print(f"fleet telemetry written to {args.stats_output}")
    return 1 if violations or json_reparses else 0


def cmd_replay(args) -> int:
    from repro.core.runtime import WorkloadPhase
    from repro.serve.scheduler import replay_trace

    table = _load_table(args.table)
    policy_kwargs = _policy_kwargs(args)
    if args.trace:
        workload = [
            WorkloadPhase(bits, cycles)
            for bits, cycles in _trace_workload(args.trace)
        ]
    else:
        rng = np.random.default_rng(args.seed)
        bitwidths = table.bitwidths
        workload = [
            WorkloadPhase(
                int(rng.choice(bitwidths)), int(rng.integers(5_000, 100_000))
            )
            for _ in range(args.phases)
        ]
    report = replay_trace(
        table,
        workload,
        policy=args.policy,
        lookahead_window=args.window,
        engine=args.serve_engine,
        **policy_kwargs,
    )
    print(f"policy {args.policy}: {report.summary()}")
    return 0


def cmd_gen_traces(args) -> int:
    from pathlib import Path

    from repro.traces import generate_suite, generate_trace

    levels = tuple(int(token) for token in args.levels.split(","))
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if args.family == "all":
        suite = generate_suite(
            seed=args.seed,
            length=args.length,
            bits_levels=levels,
            mean_cycles=args.mean_cycles,
        )
    else:
        suite = {
            args.family: generate_trace(
                args.family,
                seed=args.seed,
                length=args.length,
                bits_levels=levels,
                mean_cycles=args.mean_cycles,
            )
        }
    for family, trace in suite.items():
        path = out_dir / f"trace_{family}.json"
        trace.save(path)
        print(
            f"{family}: {len(trace.phases)} phases "
            f"(seed {trace.seed}) -> {path}"
        )
    return 0


def cmd_train_policy(args) -> int:
    from repro.io.results import save_mode_table
    from repro.serve.learned import train_on_suite

    table = _load_table(args.table)
    print(table.describe())
    result = train_on_suite(
        table,
        seed=args.seed,
        length=args.length,
        mean_cycles=args.mean_cycles,
        suites=args.suites,
        gamma=args.gamma,
        epsilon=args.epsilon,
        rounds=args.rounds,
    )
    trained = table.with_learned(result.spec)
    with open(args.output, "w") as stream:
        save_mode_table(trained, stream)
    print(
        f"fitted-Q converged: {result.samples} samples, "
        f"{result.states_visited} visited states, {result.rounds} rounds"
    )
    print(f"mode table with learned policy written to {args.output}")
    return 0


def cmd_chaos(args) -> int:
    import dataclasses
    import json as json_module
    import tempfile

    from repro.core.runtime import BiasGeneratorModel
    from repro.faults import FaultSchedule, recovery_schedule, run_chaos
    from repro.faults.environment import TEMP_SLOWDOWN_PER_C
    from repro.serve.table import compile_mode_table

    design = _implement_for(args)
    print(design.describe())
    settings = dataclasses.replace(
        _settings(args),
        activity_cycles=args.activity_cycles,
        workers=0,
        cache=False,
        cache_dir=None,
    )
    result = ExhaustiveExplorer(design).run(settings)
    table = compile_mode_table(
        design,
        result,
        BiasGeneratorModel(),
        with_margins=True,
        margin_samples=args.margin_samples,
    )
    print(table.describe())
    if args.recovery:
        # Excursion sized from the compiled margins: the peak must erode
        # past every mode's sign-off slack or nothing ever demotes.
        worst_slack_ps = max(
            margin.guarded_slack_ps for margin in table.margins.values()
        )
        magnitude_c = 1.5 * worst_slack_ps / (
            TEMP_SLOWDOWN_PER_C * 1e3 / table.fclk_ghz
        )
        # The recovery shape only audits re-advance if its windows overlap
        # live traffic, so size the horizon from the soak's actual virtual
        # span (the request mix runs ~3e5 ns per 96 requests at 1 GHz and
        # the clock advances cycles / fclk) instead of --horizon-ns.
        recovery_horizon_ns = 3e5 * (args.requests / 96.0) / table.fclk_ghz
        print(
            f"recovery schedule: horizon {recovery_horizon_ns:.3g} ns "
            f"(matched to {args.requests} requests at "
            f"{table.fclk_ghz:.2f} GHz), excursion {magnitude_c:.1f} C"
        )
        schedule = recovery_schedule(
            recovery_horizon_ns,
            magnitude=magnitude_c,
            relapse=True,
            seed=args.seed,
        )
    else:
        schedule = FaultSchedule.generate(
            args.seed,
            horizon_ns=args.horizon_ns,
            num_generators=args.generators,
            num_shards=len(settings.bitwidths),
            intensity=args.intensity,
        )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        report = run_chaos(
            table,
            schedule,
            design=None if args.serve_only else design,
            settings=None if args.serve_only else settings,
            workdir=None if args.serve_only else workdir,
            num_operators=args.operators,
            requests=args.requests,
            seed=args.seed,
            fleet_workers=args.fleet,
            fleet_requests=args.fleet_requests,
            recalibrate=args.recalibrate,
            recal_interval_ns=args.recal_interval,
        )
    print(report.describe())
    if args.summary:
        with open(args.summary, "w") as stream:
            json_module.dump(report.to_dict(), stream, indent=2)
        print(f"chaos summary written to {args.summary}")
    return 0 if report.ok else 1


def cmd_characterize(args) -> int:
    library = Library()
    if args.lib:
        from repro.io.liberty import write_liberty
        from repro.techlib.library import Corner

        corner = Corner(args.vdd, args.vbb)
        with open(args.lib, "w") as stream:
            write_liberty(library, corner, stream)
        print(f"Liberty written to {args.lib} ({corner.label})")
        return 0
    table = characterize(library, default_corner_grid(library))
    print(table.format_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic accuracy operators by runtime back bias "
        "(DATE 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_design_args(p):
        p.add_argument("--design", default="booth")
        p.add_argument("--width", type=int, default=16)

    def add_engine_args(p):
        from repro.core.config import AUTO_WORKERS

        p.add_argument(
            "--workers",
            type=int,
            nargs="?",
            const=AUTO_WORKERS,
            default=0,
            help="shard the sweep over N worker processes (bare --workers "
            "auto-detects; $REPRO_WORKERS overrides auto; 1 = sharded "
            "but serial; default: legacy in-process sweep)",
        )
        p.add_argument(
            "--cache",
            dest="cache",
            action="store_true",
            help="persist per-shard results (default dir ~/.cache/repro "
            "or $REPRO_CACHE_DIR)",
        )
        p.add_argument(
            "--no-cache",
            dest="cache",
            action="store_false",
            help="disable the persistent result cache",
        )
        p.set_defaults(cache=False)
        p.add_argument("--cache-dir", help="override the cache directory")
        p.add_argument(
            "--resume",
            action="store_true",
            help="resume an interrupted sweep from its cached shards "
            "(implies --cache)",
        )
        p.add_argument(
            "--sim-engine",
            choices=["auto", "packed", "interpreted"],
            default="auto",
            help="switching-activity simulation engine (auto picks the "
            "compiled bit-packed engine when the netlist supports it; "
            "results are bit-identical either way)",
        )
        p.add_argument(
            "--sta-engine",
            choices=["auto", "lattice", "pointwise"],
            default="auto",
            help="timing-feasibility engine over the BB lattice (lattice "
            "sweeps every back-bias combination in one tensor pass, "
            "pointwise loops the scalar engine per combination; results "
            "are bit-identical either way)",
        )

    def add_serve_engine_arg(p):
        from repro.serve.compiled import SERVE_ENGINES

        p.add_argument(
            "--serve-engine",
            choices=list(SERVE_ENGINES),
            default="auto",
            help="frame-serving kernel (auto consults $REPRO_SERVE_ENGINE "
            "and defaults to the batched array kernel; scalar loops the "
            "per-request path; results are bit-identical either way)",
        )

    # One declaration of the policy surface, shared by every serving
    # command (serve / fleet-serve / replay): the registry drives the
    # --policy choices, --policy-arg carries per-policy typed parameters
    # and --trace points at a gen-traces artifact (or a legacy list).
    from repro.serve.policy import POLICIES

    policy_parent = argparse.ArgumentParser(add_help=False)
    policy_parent.add_argument(
        "--policy",
        default="greedy",
        choices=sorted(POLICIES),
        help="mode-selection policy (learned needs a table trained with "
        "`repro train-policy`)",
    )
    policy_parent.add_argument(
        "--policy-arg",
        dest="policy_args",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="per-policy parameter, repeatable (e.g. --policy hysteresis "
        "--policy-arg dwell_cycles=50000); unknown keys exit with the "
        "policy's known parameters",
    )
    policy_parent.add_argument(
        "--trace",
        help="workload trace file: a `repro gen-traces` artifact or a "
        'legacy JSON list of {"bits": b, "cycles": c}',
    )

    p = sub.add_parser("explore", help="implement + optimize one design")
    add_design_args(p)
    add_engine_args(p)
    p.add_argument("--grid", default="2x2")
    p.add_argument("--output", help="write the mode table as JSON")
    p.set_defaults(func=cmd_explore, sweep_command=True)

    p = sub.add_parser("compare", help="proposed vs DVAS (Fig. 5)")
    add_design_args(p)
    add_engine_args(p)
    p.add_argument("--grid", default="2x2")
    p.set_defaults(func=cmd_compare, sweep_command=True)

    p = sub.add_parser(
        "cache", help="inspect or clear the persistent exploration cache"
    )
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--cache-dir", help="override the cache directory")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "compile-table",
        help="freeze exploration + implementation into a serving ModeTable",
    )
    add_design_args(p)
    add_engine_args(p)
    p.add_argument("--grid", default="2x2")
    p.add_argument(
        "--exploration",
        help="load a saved exploration JSON instead of re-exploring",
    )
    p.add_argument(
        "--output", required=True, help="write the compiled table here"
    )
    p.add_argument(
        "--margins",
        action="store_true",
        help="bake per-mode n-sigma slack margins (Monte-Carlo timing) "
        "into the table, enabling the runtime margin guard",
    )
    p.add_argument(
        "--margin-samples",
        type=int,
        default=48,
        help="Monte-Carlo sample count per mode for --margins",
    )
    p.set_defaults(func=cmd_compile_table, sweep_command=True)

    p = sub.add_parser(
        "serve",
        help="run the asyncio accuracy server from a compiled table",
        parents=[policy_parent],
    )
    p.add_argument("--table", required=True, help="compiled ModeTable JSON")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    p.add_argument("--generators", type=int, default=2)
    p.add_argument("--queue-depth", type=int, default=8)
    p.add_argument("--max-pending", type=int, default=64)
    add_serve_engine_arg(p)
    p.add_argument(
        "--soak",
        type=int,
        default=0,
        metavar="N",
        help="drive N requests through the socket, print telemetry, exit",
    )
    p.add_argument("--clients", type=int, default=4, help="soak connections")
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--recal-interval",
        type=float,
        default=0.0,
        metavar="NS",
        help="attach a margin guard + canary recalibration loop probing "
        "every NS of operator virtual time (0 = off; needs a table "
        "compiled with --margins)",
    )
    p.add_argument("--stats-output", help="write soak telemetry JSON here")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet-serve",
        help="soak the multi-process fleet tier from a compiled table",
        parents=[policy_parent],
    )
    p.add_argument("--table", required=True, help="compiled ModeTable JSON")
    from repro.core.config import AUTO_WORKERS as _AUTO

    p.add_argument(
        "--workers",
        type=int,
        nargs="?",
        const=_AUTO,
        default=2,
        help="fleet worker processes (bare --workers auto-detects; "
        "$REPRO_FLEET_WORKERS overrides auto; default 2)",
    )
    p.add_argument("--generators", type=int, default=2)
    p.add_argument("--queue-depth", type=int, default=8)
    p.add_argument(
        "--batch-window",
        type=int,
        default=16,
        help="max same-worker requests coalesced into one pipe frame",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="pipelined frames per worker",
    )
    p.add_argument(
        "--guard",
        action="store_true",
        help="attach a margin guard per worker (margined tables)",
    )
    p.add_argument(
        "--retreat-budget",
        type=int,
        default=32,
        help="degraded requests a worker serves after a fleet alert",
    )
    add_serve_engine_arg(p)
    p.add_argument(
        "--soak",
        type=int,
        default=1000,
        metavar="N",
        help="drive N requests through the fleet, print telemetry, exit",
    )
    p.add_argument(
        "--operators", type=int, default=8, help="soak operator instances"
    )
    p.add_argument(
        "--chunk", type=int, default=256, help="requests per submit batch"
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--stats-output", help="write fleet telemetry JSON here")
    p.set_defaults(func=cmd_fleet_serve)

    p = sub.add_parser(
        "replay",
        help="replay a workload trace through the serve scheduler",
        parents=[policy_parent],
    )
    p.add_argument("--table", required=True, help="compiled ModeTable JSON")
    p.add_argument(
        "--phases", type=int, default=64, help="synthetic trace length"
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--window", type=int, default=4, help="lookahead window")
    add_serve_engine_arg(p)
    p.set_defaults(func=cmd_replay)

    from repro.traces import TRACE_FAMILIES

    p = sub.add_parser(
        "gen-traces",
        help="generate the seeded workload-trace suite as JSON artifacts",
    )
    p.add_argument(
        "--output-dir", required=True, help="directory for trace_*.json"
    )
    p.add_argument(
        "--family",
        default="all",
        choices=["all", *TRACE_FAMILIES],
        help="one family, or the whole suite (seeds offset per family)",
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--length", type=int, default=200, help="phases per trace"
    )
    p.add_argument(
        "--levels",
        default="2,4,6,8",
        help="comma-separated precision levels requests draw from "
        "(pass the served table's bitwidths)",
    )
    p.add_argument(
        "--mean-cycles",
        type=int,
        default=2000,
        help="mean per-phase cycle count (jittered +/-30%%)",
    )
    p.set_defaults(func=cmd_gen_traces)

    p = sub.add_parser(
        "train-policy",
        help="train the offline fitted-Q policy and embed it in a table",
    )
    p.add_argument("--table", required=True, help="compiled ModeTable JSON")
    p.add_argument(
        "--output", required=True, help="write the trained table here"
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--length", type=int, default=400, help="phases per training trace"
    )
    p.add_argument(
        "--mean-cycles", type=int, default=2000, help="mean phase length"
    )
    p.add_argument(
        "--suites",
        type=int,
        default=3,
        help="trace suites (one trace per family each) in the corpus",
    )
    p.add_argument("--gamma", type=float, default=0.95)
    p.add_argument("--epsilon", type=float, default=0.2)
    p.add_argument(
        "--rounds",
        type=int,
        default=4,
        help="collect/fit alternations (round 0 explores uniformly)",
    )
    p.set_defaults(func=cmd_train_policy)

    p = sub.add_parser(
        "chaos",
        help="replay a seeded fault schedule against serving + exploration",
    )
    add_design_args(p)
    p.add_argument("--grid", default="2x2")
    p.add_argument("--seed", type=int, default=7, help="chaos seed")
    p.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="fault-count multiplier of the generated schedule",
    )
    p.add_argument(
        "--horizon-ns",
        type=float,
        default=1e5,
        help="virtual-time horizon of the fault schedule (keep it close "
        "to the soak's served virtual time so events overlap it)",
    )
    p.add_argument("--operators", type=int, default=3)
    p.add_argument("--requests", type=int, default=96)
    p.add_argument("--generators", type=int, default=2)
    p.add_argument(
        "--margin-samples",
        type=int,
        default=32,
        help="Monte-Carlo samples per mode for the compiled margins",
    )
    p.add_argument(
        "--activity-cycles",
        type=int,
        default=10,
        help="simulation cycles per activity estimate (small = fast soak)",
    )
    p.add_argument(
        "--serve-only",
        action="store_true",
        help="skip the exploration half (worker crash / cache corruption)",
    )
    p.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="additionally soak an N-worker fleet (>= 2) against the "
        "same schedule: silicon injection on worker 0, degradation "
        "propagation + failover audited",
    )
    p.add_argument(
        "--fleet-requests",
        type=int,
        default=1024,
        help="request count of the fleet soak",
    )
    p.add_argument(
        "--recalibrate",
        action="store_true",
        help="serve with the canary-probe recalibration loop attached "
        "and race it against the retreat-only guard (reports energy "
        "reclaimed; with --fleet, audits margin-epoch propagation)",
    )
    p.add_argument(
        "--recal-interval",
        type=float,
        default=None,
        metavar="NS",
        help="probe cadence in virtual ns (default: horizon / 32)",
    )
    p.add_argument(
        "--recovery",
        action="store_true",
        help="replace the generated storm with a recover-then-relapse "
        "temperature schedule sized from the compiled margins (the "
        "energy-reclaim audit shape; pairs with --recalibrate)",
    )
    p.add_argument("--summary", help="write the chaos report JSON here")
    p.set_defaults(func=cmd_chaos, sweep_command=True)

    p = sub.add_parser("report-timing", help="worst paths at a corner")
    add_design_args(p)
    p.add_argument("--vdd", type=float, default=1.0)
    p.add_argument("--nobb", action="store_true", help="analyze at NoBB")
    p.add_argument("--bits", type=int, help="active bitwidth (case analysis)")
    p.add_argument("--paths", type=int, default=3)
    p.set_defaults(func=cmd_report_timing)

    p = sub.add_parser("characterize", help="dump the library")
    p.add_argument("--lib", help="write a Liberty file to this path")
    p.add_argument("--vdd", type=float, default=1.0)
    p.add_argument("--vbb", type=float, default=1.1)
    p.set_defaults(func=cmd_characterize)

    return parser


def main(argv: Optional[list] = None) -> int:
    from repro.serve.errors import ServeError

    args = build_parser().parse_args(argv)
    try:
        if not getattr(args, "sweep_command", False):
            return args.func(args)
    except ServeError as error:
        # Defective serving artifacts are user errors, not crashes.
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.parallel.engine import SweepInterrupted

    with _graceful_sweeps():
        try:
            return args.func(args)
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except SweepInterrupted as stop:
            print(
                f"\nsweep interrupted: {stop.completed}/{stop.total} shards "
                "done and flushed.  Completed shards are durable in the "
                "persistent cache; re-run the same command with --resume "
                "to continue from here.",
                file=sys.stderr,
            )
            return 130


if __name__ == "__main__":
    sys.exit(main())
