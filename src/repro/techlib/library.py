"""Library facade: query cell timing/power at an arbitrary (VDD, VBB) corner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.techlib.cells import CELL_TEMPLATES, CellTemplate
from repro.techlib.fdsoi import FdsoiProcess, NOMINAL_PROCESS
from repro.techlib.models import delay_scale_factor, leakage_scale_factor


@dataclass(frozen=True)
class Corner:
    """An operating corner: a supply voltage and a back-bias voltage.

    ``vbb`` follows the forward-positive convention: ``vbb > 0`` is forward
    back bias (faster, leakier), ``vbb == 0`` is no back bias.
    """

    vdd: float
    vbb: float

    @property
    def label(self) -> str:
        """Human-readable corner name, e.g. ``"0.80V/FBB"``."""
        bias = "NoBB" if self.vbb == 0.0 else ("FBB" if self.vbb > 0.0 else "RBB")
        return f"{self.vdd:.2f}V/{bias}"


class Library:
    """The standard-cell library the whole flow queries.

    The library binds the cell templates to a process, and converts the
    characterization-corner electrical data (stored in the templates) to any
    requested corner via the physics in :mod:`repro.techlib.models`.

    Cell base delays are characterized at the *reference corner*: nominal
    VDD with full forward back bias.  This mirrors the paper's setup, where
    the operators are implemented with an all-FBB library characterization
    so that maximum accuracy at nominal VDD corresponds to the fully boosted
    configuration.
    """

    def __init__(
        self,
        process: FdsoiProcess = NOMINAL_PROCESS,
        templates: Mapping[str, CellTemplate] = None,
        temperature_c: float = None,
    ):
        process.validate()
        self.process = process
        self.temperature_c = (
            process.nominal_temperature_c
            if temperature_c is None
            else temperature_c
        )
        self.templates: Dict[str, CellTemplate] = dict(
            templates if templates is not None else CELL_TEMPLATES
        )
        self.reference_corner = Corner(process.vdd_nominal, process.fbb_voltage)
        self._delay_cache: Dict[Tuple[float, float], float] = {}
        self._leak_cache: Dict[Tuple[float, float], float] = {}

    # -- cell queries -------------------------------------------------------

    def template(self, name: str) -> CellTemplate:
        """Return the cell template called *name*."""
        try:
            return self.templates[name]
        except KeyError:
            known = ", ".join(sorted(self.templates))
            raise KeyError(f"unknown cell {name!r}; known cells: {known}")

    def has_template(self, name: str) -> bool:
        return name in self.templates

    # -- corner scaling -----------------------------------------------------

    def delay_factor(self, corner: Corner) -> float:
        """Delay multiplier of *corner* relative to the reference corner."""
        key = (corner.vdd, corner.vbb)
        if key not in self._delay_cache:
            self._delay_cache[key] = delay_scale_factor(
                corner.vdd,
                corner.vbb,
                self.process,
                reference_vdd=self.reference_corner.vdd,
                reference_vbb=self.reference_corner.vbb,
            )
        return self._delay_cache[key]

    def leakage_factor(self, corner: Corner) -> float:
        """Leakage-power multiplier of *corner* relative to (nominal VDD, NoBB)."""
        key = (corner.vdd, corner.vbb)
        if key not in self._leak_cache:
            self._leak_cache[key] = leakage_scale_factor(
                corner.vdd,
                corner.vbb,
                self.process,
                temperature_c=self.temperature_c,
            )
        return self._leak_cache[key]

    # -- convenience corner constructors -------------------------------------

    def nobb_corner(self, vdd: float = None) -> Corner:
        """The No-Back-Bias (SVT) corner at *vdd* (default: nominal)."""
        return Corner(self.process.vdd_nominal if vdd is None else vdd, 0.0)

    def fbb_corner(self, vdd: float = None) -> Corner:
        """The Forward-Back-Bias (LVT boost) corner at *vdd* (default: nominal)."""
        return Corner(
            self.process.vdd_nominal if vdd is None else vdd,
            self.process.fbb_voltage,
        )

    def rbb_corner(self, vdd: float = None) -> Corner:
        """The Reverse-Back-Bias (leakage-saving) corner at *vdd*.

        RBB raises Vth: much slower but far less leaky -- the natural
        state for domains whose logic is fully deactivated by LSB gating.
        The paper's two-state methodology maps to {NoBB, FBB}; RBB is the
        "more than two Vth values" extension it mentions in Section III.
        """
        return Corner(
            self.process.vdd_nominal if vdd is None else vdd,
            -self.process.fbb_voltage,
        )

    def vdd_sweep(
        self, vdd_max: float = 1.0, vdd_min: float = 0.6, step: float = 0.1
    ) -> List[float]:
        """The supply-voltage sweep the paper explores (1.0 V down to 0.6 V)."""
        if step <= 0.0:
            raise ValueError("step must be positive")
        voltages = []
        vdd = vdd_max
        while vdd >= vdd_min - 1e-9:
            voltages.append(round(vdd, 10))
            vdd -= step
        return voltages


#: Default library instance shared by examples and benchmarks.
DEFAULT_LIBRARY = Library()
