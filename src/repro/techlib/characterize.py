"""Corner characterization tables.

Commercial flows consume ``.lib`` files characterized per corner; this module
produces the equivalent in-memory tables for our synthetic library: for a set
of (VDD, VBB) corners, per-cell-drive delay and leakage numbers.  The tables
are what a designer would inspect to sanity-check the technology model, and
the characterization benchmark prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.techlib.cells import DriveVariant
from repro.techlib.library import Corner, Library


@dataclass(frozen=True)
class CellCornerData:
    """Characterized numbers of one (cell, drive) at one corner."""

    cell: str
    drive: str
    corner: Corner
    intrinsic_delay_ps: float
    load_coeff_ps_per_ff: float
    leakage_nw: float


@dataclass
class CharacterizationTable:
    """All characterized (cell, drive, corner) triples of a library."""

    library: Library
    corners: List[Corner]
    rows: List[CellCornerData] = field(default_factory=list)

    def lookup(self, cell: str, drive: str, corner: Corner) -> CellCornerData:
        """Return the characterized row for (cell, drive, corner)."""
        for row in self.rows:
            if row.cell == cell and row.drive == drive and row.corner == corner:
                return row
        raise KeyError(f"no characterization for {cell}/{drive} at {corner.label}")

    def format_text(self, cells: Iterable[str] = ("INV", "NAND2", "XOR2", "FA")) -> str:
        """Render a human-readable characterization summary."""
        wanted = set(cells)
        lines = [
            f"{'cell':8s} {'drive':6s} {'corner':12s} "
            f"{'d0[ps]':>8s} {'k[ps/fF]':>9s} {'leak[nW]':>9s}"
        ]
        for row in self.rows:
            if row.cell in wanted:
                lines.append(
                    f"{row.cell:8s} {row.drive:6s} {row.corner.label:12s} "
                    f"{row.intrinsic_delay_ps:8.2f} "
                    f"{row.load_coeff_ps_per_ff:9.3f} {row.leakage_nw:9.2f}"
                )
        return "\n".join(lines)


def characterize(library: Library, corners: Iterable[Corner]) -> CharacterizationTable:
    """Characterize every (cell, drive) of *library* at each of *corners*.

    Delay numbers scale the reference-corner base values by the corner's
    delay factor; leakage scales by the leakage factor.
    """
    corner_list = list(corners)
    table = CharacterizationTable(library=library, corners=corner_list)
    for corner in corner_list:
        d_factor = library.delay_factor(corner)
        l_factor = library.leakage_factor(corner)
        for cell_name in sorted(library.templates):
            template = library.templates[cell_name]
            for drive_name in template.drive_names:
                drive: DriveVariant = template.drives[drive_name]
                table.rows.append(
                    CellCornerData(
                        cell=cell_name,
                        drive=drive_name,
                        corner=corner,
                        intrinsic_delay_ps=drive.intrinsic_delay_ps * d_factor,
                        load_coeff_ps_per_ff=drive.load_coeff_ps_per_ff * d_factor,
                        leakage_nw=drive.leakage_nw * l_factor,
                    )
                )
    return table


def default_corner_grid(library: Library) -> List[Corner]:
    """The paper's exploration grid: VDD 1.0..0.6 V x {NoBB, FBB}."""
    corners = []
    for vdd in library.vdd_sweep():
        corners.append(library.nobb_corner(vdd))
        corners.append(library.fbb_corner(vdd))
    return corners
