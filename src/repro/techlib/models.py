"""First-order device models: Vth shift, alpha-power-law delay, leakage.

These three functions are the physical core of the whole reproduction: the
paper's methodology works *because* forward back bias lowers Vth, which makes
gates faster (alpha-power law) but exponentially leakier (sub-threshold
conduction).  Everything else in the flow -- STA corners, leakage tables,
Pareto shapes -- derives from them.

All functions accept scalars or numpy arrays for the voltage arguments.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.techlib.fdsoi import FdsoiProcess, NOMINAL_PROCESS

ArrayLike = Union[float, np.ndarray]


def threshold_voltage(
    vbb: ArrayLike,
    vdd: ArrayLike = None,
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> ArrayLike:
    """Effective threshold voltage under back bias and DIBL.

    Parameters
    ----------
    vbb:
        Back-bias voltage in volts.  Positive values are forward back bias
        (FBB, lowers Vth); negative values are reverse back bias (RBB).
    vdd:
        Supply voltage; if given, DIBL lowers Vth as VDD rises above the
        nominal supply (and raises it below).  ``None`` skips the DIBL term.
    process:
        Process parameter set.

    Returns
    -------
    Effective Vth in volts.
    """
    vbb_arr = np.asarray(vbb, dtype=float)
    vth = (
        process.vth0
        - process.body_factor * vbb_arr
        - process.lvt_offset * vbb_arr / process.fbb_voltage
    )
    if vdd is not None:
        vth = vth - process.dibl * (np.asarray(vdd, dtype=float) - process.vdd_nominal)
    if np.ndim(vth) == 0:
        return float(vth)
    return vth


def drive_strength(
    vdd: ArrayLike,
    vbb: ArrayLike,
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> ArrayLike:
    """Alpha-power-law drive term ``(VDD - Vth)^alpha / VDD``.

    Gate delay is inversely proportional to this quantity.  Raises
    :class:`ValueError` when the transistor does not turn on (VDD <= Vth),
    because a delay would be meaningless there.
    """
    vdd_arr = np.asarray(vdd, dtype=float)
    vth = np.asarray(threshold_voltage(vbb, vdd_arr, process), dtype=float)
    overdrive = vdd_arr - vth
    if np.any(overdrive <= 0.0):
        raise ValueError(
            f"supply {vdd} V does not exceed Vth {vth} V: gate never switches"
        )
    strength = np.power(overdrive, process.alpha) / vdd_arr
    if np.ndim(strength) == 0:
        return float(strength)
    return strength


def delay_scale_factor(
    vdd: ArrayLike,
    vbb: ArrayLike,
    process: FdsoiProcess = NOMINAL_PROCESS,
    reference_vdd: float = None,
    reference_vbb: float = None,
) -> ArrayLike:
    """Delay multiplier relative to a reference corner.

    Cell delays in the library are characterized at the *reference corner*
    (by default: nominal VDD with full forward back bias, matching the
    paper's choice of closing timing with an all-FBB characterization).
    The factor returned here scales those base delays to any other corner:
    factor 1.0 at the reference, > 1.0 for slower corners (lower VDD or
    less forward bias), < 1.0 for faster ones.
    """
    if reference_vdd is None:
        reference_vdd = process.vdd_nominal
    if reference_vbb is None:
        reference_vbb = process.fbb_voltage
    reference = drive_strength(reference_vdd, reference_vbb, process)
    vdd_arr = np.asarray(vdd, dtype=float)
    vth = np.asarray(threshold_voltage(vbb, vdd_arr, process), dtype=float)
    overdrive = vdd_arr - vth
    # Below (or at) threshold the gate effectively never switches at GHz
    # frequencies: report an infinite delay factor rather than failing, so
    # the exploration simply marks such corners infeasible.
    safe = np.maximum(overdrive, 1e-12)
    actual = np.where(
        overdrive > 0.0, np.power(safe, process.alpha) / vdd_arr, np.nan
    )
    factor = np.where(
        overdrive > 0.0,
        np.asarray(reference, dtype=float) / actual,
        np.inf,
    )
    if np.ndim(factor) == 0:
        return float(factor)
    return factor


def temperature_leakage_multiplier(
    temperature_c: float,
    process: FdsoiProcess = NOMINAL_PROCESS,
) -> float:
    """Leakage multiplier of operating at *temperature_c*.

    Sub-threshold leakage roughly doubles every ``leakage_doubling_c``
    degrees above the characterization temperature (and halves below it).
    Delay temperature dependence is second-order at these supplies and is
    not modelled.
    """
    exponent = (
        temperature_c - process.nominal_temperature_c
    ) / process.leakage_doubling_c
    return float(2.0**exponent)


def leakage_scale_factor(
    vdd: ArrayLike,
    vbb: ArrayLike,
    process: FdsoiProcess = NOMINAL_PROCESS,
    temperature_c: float = None,
) -> ArrayLike:
    """Sub-threshold leakage multiplier relative to the (nominal VDD, NoBB) corner.

    Model: ``I_leak ∝ exp(-Vth / (n vT)) * VDD / VDD_nom``.  The exponential
    captures the dominant Vth dependence (so FBB at the paper's 1.1 V shifts
    Vth by ~93.5 mV and multiplies leakage by roughly 14x); the linear VDD
    term is a first-order stand-in for the combined DIBL-free drain-voltage
    dependence of the leakage *power* (I * VDD).  DIBL enters through
    :func:`threshold_voltage`.
    """
    vdd_arr = np.asarray(vdd, dtype=float)
    vth_ref = threshold_voltage(0.0, process.vdd_nominal, process)
    vth = np.asarray(threshold_voltage(vbb, vdd_arr, process), dtype=float)
    factor = np.exp((vth_ref - vth) / process.subthreshold_swing)
    factor = factor * vdd_arr / process.vdd_nominal
    if temperature_c is not None:
        factor = factor * temperature_leakage_multiplier(
            temperature_c, process
        )
    if np.ndim(factor) == 0:
        return float(factor)
    return factor
