"""Synthetic 28nm UTBB FDSOI technology library.

This subpackage replaces the proprietary STMicroelectronics 28nm FDSOI
standard-cell library used in the paper.  It provides:

* :mod:`repro.techlib.fdsoi` -- process constants (body factor, guardband
  geometry, nominal voltages) taken from the paper's Section II-C,
* :mod:`repro.techlib.models` -- first-order device physics (alpha-power-law
  delay, sub-threshold leakage, back-bias Vth shift),
* :mod:`repro.techlib.cells` -- the standard-cell templates (logic function,
  drive strengths, pin capacitances, area, leakage weights),
* :mod:`repro.techlib.library` -- the :class:`Library` facade that the rest of
  the flow queries for delay/power at an arbitrary (VDD, VBB) corner.
"""

from repro.techlib.fdsoi import FdsoiProcess, NOMINAL_PROCESS
from repro.techlib.models import (
    threshold_voltage,
    delay_scale_factor,
    leakage_scale_factor,
)
from repro.techlib.cells import CellTemplate, DriveVariant, CELL_TEMPLATES
from repro.techlib.library import Library, Corner

__all__ = [
    "FdsoiProcess",
    "NOMINAL_PROCESS",
    "threshold_voltage",
    "delay_scale_factor",
    "leakage_scale_factor",
    "CellTemplate",
    "DriveVariant",
    "CELL_TEMPLATES",
    "Library",
    "Corner",
]
