"""Process constants for the synthetic 28nm UTBB FDSOI node.

The numbers below come from the paper itself where it states them (body
factor, guardband width, cell height, back-bias range) and from public
28nm-FDSOI literature for the remaining first-order device parameters.
Absolute values only need to land power in the paper's reported window;
the *relationships* between knobs (VDD, VBB, bitwidth) are what the
reproduction must preserve.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class FdsoiProcess:
    """First-order parameters of a 28nm UTBB FDSOI process.

    Attributes
    ----------
    vdd_nominal:
        Nominal supply voltage in volts (the paper implements all operators
        at 1.0 V).
    vth0:
        Threshold voltage at no back bias (SVT flavour), in volts.
    body_factor:
        Sensitivity of Vth to the back-bias voltage, in V/V.  The paper
        quotes 85 mV/V for 28nm UTBB FDSOI.
    lvt_offset:
        Extra Vth reduction of the fully boosted state, in volts.  The
        paper's methodology maps "SVT" to NoBB and "LVT" to FBB
        (Section III): the boost condition behaves like a low-Vth flavour
        on top of the pure body effect, so the total boost shift is
        ``body_factor * fbb_voltage + lvt_offset``.  Intermediate back-bias
        voltages scale the offset proportionally.
    dibl:
        Drain-induced barrier lowering coefficient (V of Vth per V of VDD),
        applied relative to the nominal supply.
    alpha:
        Velocity-saturation exponent of the alpha-power-law delay model.
    subthreshold_swing:
        n * vT of the sub-threshold current equation, in volts.  Controls
        how strongly leakage reacts to Vth shifts.
    fbb_voltage:
        Forward back-bias voltage magnitude used as the "boost" condition
        (the paper uses +/- 1.1 V on N-well / P-well).
    max_bb_voltage:
        Widest usable back-bias magnitude (the UTBB FDSOI range spans more
        than 2 V thanks to the buried oxide).
    guardband_width_um:
        Minimum width of the guardband separating independent BB domains.
    cell_height_um:
        Standard-cell row height.
    well_tap_pitch_um:
        Distance between well taps connecting BB rails inside a domain.
    nominal_temperature_c:
        Temperature at which leakage numbers are characterized.
    leakage_doubling_c:
        Temperature increase that doubles sub-threshold leakage (the
        classic ~8-20 degC/decade rule of thumb, expressed per octave).
    """

    vdd_nominal: float = 1.0
    vth0: float = 0.42
    body_factor: float = 0.085
    lvt_offset: float = 0.07
    dibl: float = 0.10
    alpha: float = 1.4
    subthreshold_swing: float = 0.065
    fbb_voltage: float = 1.1
    max_bb_voltage: float = 2.0
    guardband_width_um: float = 3.5
    cell_height_um: float = 1.2
    well_tap_pitch_um: float = 25.0
    nominal_temperature_c: float = 25.0
    leakage_doubling_c: float = 20.0

    def validate(self) -> None:
        """Raise :class:`ValueError` if the parameter set is not physical."""
        if not 0.0 < self.vth0 < self.vdd_nominal:
            raise ValueError(
                f"vth0={self.vth0} must lie in (0, vdd_nominal={self.vdd_nominal})"
            )
        if self.body_factor <= 0.0:
            raise ValueError("body_factor must be positive")
        if self.lvt_offset < 0.0:
            raise ValueError("lvt_offset cannot be negative")
        if self.alpha < 1.0 or self.alpha > 2.0:
            raise ValueError("alpha outside the physical 1..2 range")
        if self.subthreshold_swing <= 0.0:
            raise ValueError("subthreshold_swing must be positive")
        if self.fbb_voltage > self.max_bb_voltage:
            raise ValueError("fbb_voltage exceeds the usable back-bias range")
        if self.guardband_width_um <= 0.0 or self.cell_height_um <= 0.0:
            raise ValueError("geometry parameters must be positive")
        if self.leakage_doubling_c <= 0.0:
            raise ValueError("leakage_doubling_c must be positive")


#: The default process used throughout the reproduction.
NOMINAL_PROCESS = FdsoiProcess()
NOMINAL_PROCESS.validate()
