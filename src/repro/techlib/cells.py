"""Standard-cell templates of the synthetic FDSOI library.

Each template couples a boolean function (used by the logic simulator and by
the case-analysis constant propagator) with electrical data per drive
strength (used by STA and power analysis).  Electrical data is generated
from logical-effort-style parameters so that all cells are mutually
consistent: a bigger drive has proportionally more input capacitance,
leakage and area, and proportionally less delay per fF of load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Electrical base constants (characterized at VDD=1.0 V, FBB corner).
# ---------------------------------------------------------------------------

#: Intrinsic delay of one "parasitic delay unit" (ps).
TAU_PS = 4.0
#: Load-dependent delay of a size-1 drive (ps per fF of load).
R_UNIT_PS_PER_FF = 3.5
#: Input capacitance of one logical-effort unit (fF).
CAP_UNIT_FF = 0.75
#: Leakage of a size-1, weight-1 cell at (VDD nominal, NoBB) (nW).
LEAK_UNIT_NW = 70.0
#: Area of one area unit (um^2); a size-1 inverter is one unit.
AREA_UNIT_UM2 = 0.55
#: Output (drain) capacitance per drive size unit (fF).
DRAIN_CAP_FF = 0.30


@dataclass(frozen=True)
class DriveVariant:
    """Electrical view of one drive strength of a cell.

    Delay of an arc through this cell is
    ``intrinsic_delay_ps + load_coeff_ps_per_ff * C_load_ff`` at the
    characterization corner, then scaled by the corner factor.
    """

    name: str
    size: float
    intrinsic_delay_ps: float
    load_coeff_ps_per_ff: float
    input_cap_ff: float
    output_cap_ff: float
    internal_cap_ff: float
    area_um2: float
    leakage_nw: float


@dataclass(frozen=True)
class CellTemplate:
    """A library cell: logic function plus per-drive electrical data.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2"``.
    inputs / outputs:
        Ordered pin names.  Input order is the order ``evaluate`` expects.
    evaluate:
        Pure function mapping input boolean arrays to a tuple of output
        boolean arrays.  ``None`` for sequential cells (the simulator
        handles state elements explicitly).
    drives:
        Mapping of drive name (``"X1"``...) to :class:`DriveVariant`.
    is_sequential:
        True for flip-flops.
    clk_to_q_ps / setup_ps / hold_ps:
        Sequential timing (characterization corner), unused for
        combinational cells.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    evaluate: Callable[..., Tuple[np.ndarray, ...]]
    drives: Mapping[str, DriveVariant]
    is_sequential: bool = False
    clk_to_q_ps: float = 0.0
    setup_ps: float = 0.0
    hold_ps: float = 0.0

    def drive(self, name: str) -> DriveVariant:
        """Return the :class:`DriveVariant` called *name* (KeyError if absent)."""
        return self.drives[name]

    @property
    def drive_names(self) -> Tuple[str, ...]:
        """Drive names ordered from weakest to strongest."""
        return tuple(sorted(self.drives, key=lambda n: self.drives[n].size))


def _make_drives(
    logical_effort: float,
    parasitic: float,
    leak_weight: float,
    area_units: float,
    internal_units: float,
    sizes: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
) -> Dict[str, DriveVariant]:
    """Build the drive-strength family of one cell from effort parameters."""
    drives: Dict[str, DriveVariant] = {}
    for size in sizes:
        name = f"X{size:g}".replace("X0.5", "X05")
        drives[name] = DriveVariant(
            name=name,
            size=size,
            intrinsic_delay_ps=parasitic * TAU_PS,
            load_coeff_ps_per_ff=R_UNIT_PS_PER_FF / size,
            input_cap_ff=logical_effort * size * CAP_UNIT_FF,
            output_cap_ff=DRAIN_CAP_FF * size,
            internal_cap_ff=internal_units * size * CAP_UNIT_FF,
            area_um2=area_units * (0.6 + 0.4 * size) * AREA_UNIT_UM2,
            leakage_nw=leak_weight * size * LEAK_UNIT_NW,
        )
    return drives


# ---------------------------------------------------------------------------
# Boolean functions.  All take/return numpy bool arrays (or python bools).
# ---------------------------------------------------------------------------


def _inv(a):
    return (np.logical_not(a),)


def _buf(a):
    return (np.asarray(a),)


def _nand2(a, b):
    return (np.logical_not(np.logical_and(a, b)),)


def _nand3(a, b, c):
    return (np.logical_not(np.logical_and(np.logical_and(a, b), c)),)


def _nor2(a, b):
    return (np.logical_not(np.logical_or(a, b)),)


def _nor3(a, b, c):
    return (np.logical_not(np.logical_or(np.logical_or(a, b), c)),)


def _and2(a, b):
    return (np.logical_and(a, b),)


def _and3(a, b, c):
    return (np.logical_and(np.logical_and(a, b), c),)


def _or2(a, b):
    return (np.logical_or(a, b),)


def _or3(a, b, c):
    return (np.logical_or(np.logical_or(a, b), c),)


def _xor2(a, b):
    return (np.logical_xor(a, b),)


def _xnor2(a, b):
    return (np.logical_not(np.logical_xor(a, b)),)


def _aoi21(a, b, c):
    return (np.logical_not(np.logical_or(np.logical_and(a, b), c)),)


def _oai21(a, b, c):
    return (np.logical_not(np.logical_and(np.logical_or(a, b), c)),)


def _mux2(a, b, s):
    """Output = a when s=0, b when s=1."""
    return (np.where(np.asarray(s), np.asarray(b), np.asarray(a)).astype(bool),)


def _ha(a, b):
    return (np.logical_xor(a, b), np.logical_and(a, b))


def _fa(a, b, cin):
    s = np.logical_xor(np.logical_xor(a, b), cin)
    co = np.logical_or(
        np.logical_and(a, b),
        np.logical_and(cin, np.logical_xor(a, b)),
    )
    return (s, co)


def _tielo():
    return (np.asarray(False),)


def _tiehi():
    return (np.asarray(True),)


# ---------------------------------------------------------------------------
# The library cell set.
# ---------------------------------------------------------------------------


def _template(
    name: str,
    inputs: Tuple[str, ...],
    outputs: Tuple[str, ...],
    func,
    logical_effort: float,
    parasitic: float,
    leak_weight: float,
    area_units: float,
    internal_units: float = 0.0,
    **kwargs,
) -> CellTemplate:
    return CellTemplate(
        name=name,
        inputs=inputs,
        outputs=outputs,
        evaluate=func,
        drives=_make_drives(
            logical_effort, parasitic, leak_weight, area_units, internal_units
        ),
        **kwargs,
    )


CELL_TEMPLATES: Dict[str, CellTemplate] = {
    t.name: t
    for t in [
        _template("INV", ("A",), ("Y",), _inv, 1.0, 1.0, 1.0, 1.0),
        _template("BUF", ("A",), ("Y",), _buf, 1.0, 2.0, 1.3, 1.4, 0.5),
        _template("NAND2", ("A", "B"), ("Y",), _nand2, 4.0 / 3.0, 2.0, 1.6, 1.4),
        _template("NAND3", ("A", "B", "C"), ("Y",), _nand3, 5.0 / 3.0, 3.0, 2.2, 1.9),
        _template("NOR2", ("A", "B"), ("Y",), _nor2, 5.0 / 3.0, 2.0, 1.6, 1.4),
        _template("NOR3", ("A", "B", "C"), ("Y",), _nor3, 7.0 / 3.0, 3.0, 2.2, 1.9),
        _template("AND2", ("A", "B"), ("Y",), _and2, 4.0 / 3.0, 3.0, 2.0, 1.8, 0.6),
        _template("AND3", ("A", "B", "C"), ("Y",), _and3, 5.0 / 3.0, 4.0, 2.6, 2.3, 0.8),
        _template("OR2", ("A", "B"), ("Y",), _or2, 5.0 / 3.0, 3.0, 2.0, 1.8, 0.6),
        _template("OR3", ("A", "B", "C"), ("Y",), _or3, 7.0 / 3.0, 4.0, 2.6, 2.3, 0.8),
        _template("XOR2", ("A", "B"), ("Y",), _xor2, 3.0, 4.0, 2.8, 2.5, 1.2),
        _template("XNOR2", ("A", "B"), ("Y",), _xnor2, 3.0, 4.0, 2.8, 2.5, 1.2),
        _template("AOI21", ("A", "B", "C"), ("Y",), _aoi21, 1.8, 2.5, 2.0, 1.8),
        _template("OAI21", ("A", "B", "C"), ("Y",), _oai21, 1.8, 2.5, 2.0, 1.8),
        _template("MUX2", ("A", "B", "S"), ("Y",), _mux2, 2.0, 3.5, 2.6, 2.4, 1.0),
        _template("HA", ("A", "B"), ("S", "CO"), _ha, 2.2, 4.0, 3.0, 3.0, 1.5),
        _template("FA", ("A", "B", "CI"), ("S", "CO"), _fa, 2.8, 6.0, 4.5, 4.5, 2.5),
        _template("TIELO", (), ("Y",), _tielo, 0.0, 0.0, 0.3, 0.5),
        _template("TIEHI", (), ("Y",), _tiehi, 0.0, 0.0, 0.3, 0.5),
        _template(
            "DFF",
            ("D", "CK"),
            ("Q",),
            None,
            1.2,
            0.0,
            4.0,
            4.5,
            2.0,
            is_sequential=True,
            clk_to_q_ps=35.0,
            setup_ps=20.0,
            hold_ps=8.0,
        ),
    ]
}


def get_template(name: str) -> CellTemplate:
    """Look up a cell template by name, with a helpful error message."""
    try:
        return CELL_TEMPLATES[name]
    except KeyError:
        known = ", ".join(sorted(CELL_TEMPLATES))
        raise KeyError(f"unknown cell template {name!r}; known cells: {known}")
