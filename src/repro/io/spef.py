"""SPEF (Standard Parasitic Exchange Format) writer.

Each net's extracted wire parasitics become a ``*D_NET`` entry with the
total capacitance and a single lumped resistance from the driver pin to a
merged load node -- the "wire-load" reduction of SPEF, adequate for the
first-order RC model the timing engine uses.
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.netlist.netlist import Netlist
from repro.pnr.parasitics import Parasitics


def write_spef(
    netlist: Netlist,
    parasitics: Parasitics,
    stream: TextIO,
    design_name: Optional[str] = None,
) -> None:
    """Write per-net wire RC as SPEF text."""
    stream.write(f'*SPEF "IEEE 1481-1998"\n')
    stream.write(f'*DESIGN "{design_name or netlist.name}"\n')
    stream.write('*VENDOR "repro"\n*PROGRAM "repro.pnr.parasitics"\n')
    stream.write('*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n')
    stream.write("\n*NAME_MAP\n")
    for net in netlist.nets:
        stream.write(f"*{net.index + 1} {net.name}\n")
    stream.write("\n")

    for net in netlist.nets:
        cap = float(parasitics.wire_cap_ff[net.index])
        res = float(parasitics.wire_res_ohm[net.index])
        if cap == 0.0 and res == 0.0:
            continue
        stream.write(f"*D_NET *{net.index + 1} {cap:.4f}\n")
        stream.write("*CONN\n")
        if net.driver is not None:
            stream.write(
                f"*I {net.driver.cell.name}:{net.driver.pin_name} O\n"
            )
        for sink in net.sinks:
            stream.write(f"*I {sink.cell.name}:{sink.pin_name} I\n")
        stream.write("*CAP\n")
        stream.write(f"1 *{net.index + 1}:1 {cap:.4f}\n")
        if res > 0.0 and net.driver is not None:
            stream.write("*RES\n")
            stream.write(
                f"1 {net.driver.cell.name}:{net.driver.pin_name} "
                f"*{net.index + 1}:1 {res:.4f}\n"
            )
        stream.write("*END\n\n")
