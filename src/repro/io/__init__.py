"""Interchange-format writers: Liberty, DEF, SPEF, VCD.

These emit the standard file formats a physical-design ecosystem expects,
so results of this flow can be inspected with ordinary EDA viewers or fed
to external tools: the characterized library as ``.lib``, placements as
DEF, extracted wire parasitics as SPEF, and simulation traces as VCD.
All writers are intentionally minimal, producing the widely supported core
of each format.
"""

from repro.io.liberty import write_liberty
from repro.io.defio import write_def
from repro.io.results import (
    load_exploration,
    load_mode_table,
    save_exploration,
    save_mode_table,
)
from repro.io.spef import write_spef
from repro.io.vcd import write_vcd

__all__ = [
    "write_liberty",
    "write_def",
    "write_spef",
    "write_vcd",
    "save_exploration",
    "load_exploration",
    "save_mode_table",
    "load_mode_table",
]
