"""VCD (Value Change Dump) writer for cycle-accurate simulation traces.

Dumps one batch element of a :class:`~repro.sim.simulator.CycleTrace`
(collected with ``collect_net_values=True``) as VCD, one timestep per
clock cycle, so waveforms can be opened in GTKWave and friends.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, TextIO

from repro.sim.simulator import CycleTrace

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifiers():
    """Infinite stream of short VCD identifiers: !, ", ..., !!, !", ..."""
    for length in itertools.count(1):
        for combo in itertools.product(_ID_CHARS, repeat=length):
            yield "".join(combo)


def write_vcd(
    trace: CycleTrace,
    stream: TextIO,
    batch_index: int = 0,
    nets: Optional[Iterable[str]] = None,
    timescale_ns_per_cycle: int = 1,
) -> None:
    """Write *trace* (one batch element) as VCD.

    *nets* restricts the dump to the named nets (default: every net).
    Each simulated cycle advances time by *timescale_ns_per_cycle*.
    """
    if not trace.net_values_per_cycle:
        raise ValueError(
            "trace has no collected net values; rerun with "
            "run_cycles(collect_net_values=True)"
        )
    netlist = trace.netlist
    if nets is None:
        selected = list(netlist.nets)
    else:
        selected = [netlist.net(name) for name in nets]
    history = trace.net_values_per_cycle  # list of (num_nets, batch)
    batch = history[0].shape[1]
    if not 0 <= batch_index < batch:
        raise ValueError(f"batch index {batch_index} outside 0..{batch - 1}")

    ids = {}
    id_stream = _identifiers()
    stream.write("$date repro simulation $end\n")
    stream.write("$version repro.io.vcd $end\n")
    stream.write(f"$timescale {timescale_ns_per_cycle}ns $end\n")
    stream.write(f"$scope module {netlist.name} $end\n")
    for net in selected:
        ids[net.index] = next(id_stream)
        safe = net.name.replace(" ", "_")
        stream.write(f"$var wire 1 {ids[net.index]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    previous = {}
    for cycle, values in enumerate(history):
        changes = []
        for net in selected:
            bit = int(values[net.index, batch_index])
            if previous.get(net.index) != bit:
                changes.append(f"{bit}{ids[net.index]}")
                previous[net.index] = bit
        if changes or cycle == 0:
            stream.write(f"#{cycle * timescale_ns_per_cycle}\n")
            if cycle == 0:
                stream.write("$dumpvars\n")
            for change in changes:
                stream.write(change + "\n")
            if cycle == 0:
                stream.write("$end\n")
    stream.write(f"#{len(history) * timescale_ns_per_cycle}\n")
