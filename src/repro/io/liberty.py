"""Liberty (.lib) writer for one characterized corner.

Emits the linear-delay-model subset of Liberty: per cell and drive, the
pin directions/capacitances, cell leakage, and per-output intrinsic delay
plus drive resistance.  One file describes one (VDD, VBB) corner, exactly
how multi-corner FDSOI libraries ship (a .lib per bias state).
"""

from __future__ import annotations

from typing import TextIO

from repro.techlib.library import Corner, Library


def _lib_name(library_name: str, corner: Corner) -> str:
    bias = "nobb" if corner.vbb == 0 else ("fbb" if corner.vbb > 0 else "rbb")
    return f"{library_name}_{corner.vdd:.2f}v_{bias}".replace(".", "p")


def write_liberty(
    library: Library,
    corner: Corner,
    stream: TextIO,
    library_name: str = "repro28fdsoi",
) -> None:
    """Write every (cell, drive) of *library* at *corner* as Liberty text."""
    d_factor = library.delay_factor(corner)
    l_factor = library.leakage_factor(corner)
    name = _lib_name(library_name, corner)

    stream.write(f'library ({name}) {{\n')
    stream.write('  delay_model : "generic_cmos";\n')
    stream.write('  time_unit : "1ps";\n')
    stream.write('  capacitive_load_unit (1, "ff");\n')
    stream.write('  leakage_power_unit : "1nW";\n')
    stream.write(f'  nom_voltage : {corner.vdd:.2f};\n')
    stream.write(f'  comment : "back bias {corner.vbb:+.2f} V";\n')

    for cell_name in sorted(library.templates):
        template = library.templates[cell_name]
        for drive_name in template.drive_names:
            drive = template.drives[drive_name]
            stream.write(f"  cell ({cell_name}_{drive_name}) {{\n")
            stream.write(f"    area : {drive.area_um2:.4f};\n")
            stream.write(
                f"    cell_leakage_power : "
                f"{drive.leakage_nw * l_factor:.4f};\n"
            )
            if template.is_sequential:
                stream.write('    ff (IQ, IQN) { clocked_on : "CK"; '
                             'next_state : "D"; }\n')
            for pin in template.inputs:
                stream.write(f"    pin ({pin}) {{\n")
                stream.write("      direction : input;\n")
                stream.write(
                    f"      capacitance : {drive.input_cap_ff:.4f};\n"
                )
                if template.is_sequential and pin == "CK":
                    stream.write("      clock : true;\n")
                if template.is_sequential and pin == "D":
                    stream.write(
                        "      timing () {\n"
                        '        related_pin : "CK";\n'
                        "        timing_type : setup_rising;\n"
                        f"        intrinsic_rise : "
                        f"{template.setup_ps * d_factor:.2f};\n"
                        "      }\n"
                    )
                stream.write("    }\n")
            for pin in template.outputs:
                stream.write(f"    pin ({pin}) {{\n")
                stream.write("      direction : output;\n")
                if template.is_sequential:
                    stream.write(
                        "      timing () {\n"
                        '        related_pin : "CK";\n'
                        "        timing_type : rising_edge;\n"
                        f"        intrinsic_rise : "
                        f"{template.clk_to_q_ps * d_factor:.2f};\n"
                        "      }\n"
                    )
                else:
                    for related in template.inputs:
                        stream.write(
                            "      timing () {\n"
                            f'        related_pin : "{related}";\n'
                            f"        intrinsic_rise : "
                            f"{drive.intrinsic_delay_ps * d_factor:.2f};\n"
                            f"        rise_resistance : "
                            f"{drive.load_coeff_ps_per_ff * d_factor:.4f};\n"
                            "      }\n"
                        )
                stream.write("    }\n")
            stream.write("  }\n")
    stream.write("}\n")
