"""JSON persistence for exploration results and mode tables.

Explorations of the big designs take seconds to minutes; systems built on
the mode tables (runtime controllers, SoC composition) want to load them
without re-running the flow.  The JSON schema is versioned and stable.
"""

from __future__ import annotations

import json
from typing import Dict, TextIO

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.exploration import ExplorationResult

SCHEMA_VERSION = 1


def _point_to_dict(point: OperatingPoint) -> Dict:
    return point.to_dict()


def _point_from_dict(data: Dict) -> OperatingPoint:
    return OperatingPoint.from_dict(data)


def save_exploration(result: ExplorationResult, stream: TextIO) -> None:
    """Serialize an exploration result (mode tables + statistics) as JSON."""
    payload = {
        "schema": SCHEMA_VERSION,
        "design_name": result.design_name,
        "num_domains": result.num_domains,
        "points_evaluated": result.points_evaluated,
        "points_feasible": result.points_feasible,
        "runtime_s": result.runtime_s,
        "settings": {
            "bitwidths": list(result.settings.bitwidths),
            "vdd_values": list(result.settings.vdd_values),
            "activity_cycles": result.settings.activity_cycles,
            "activity_batch": result.settings.activity_batch,
            "seed": result.settings.seed,
        },
        "best_per_bitwidth": {
            str(bits): _point_to_dict(point)
            for bits, point in result.best_per_bitwidth.items()
        },
        "best_per_knob_point": [
            {"bits": bits, "vdd": vdd, "point": _point_to_dict(point)}
            for (bits, vdd), point in result.best_per_knob_point.items()
        ],
        "feasible_counts": [
            {"bits": bits, "vdd": vdd, "count": count}
            for (bits, vdd), count in result.feasible_counts.items()
        ],
    }
    json.dump(payload, stream, indent=2)


def load_exploration(stream: TextIO) -> ExplorationResult:
    """Load an exploration result saved by :func:`save_exploration`."""
    payload = json.load(stream)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {payload.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    settings = ExplorationSettings(
        bitwidths=tuple(payload["settings"]["bitwidths"]),
        vdd_values=tuple(payload["settings"]["vdd_values"]),
        activity_cycles=int(payload["settings"]["activity_cycles"]),
        activity_batch=int(payload["settings"]["activity_batch"]),
        seed=int(payload["settings"]["seed"]),
    )
    return ExplorationResult(
        design_name=payload["design_name"],
        settings=settings,
        num_domains=int(payload["num_domains"]),
        best_per_bitwidth={
            int(bits): _point_from_dict(point)
            for bits, point in payload["best_per_bitwidth"].items()
        },
        points_evaluated=int(payload["points_evaluated"]),
        points_feasible=int(payload["points_feasible"]),
        runtime_s=float(payload["runtime_s"]),
        feasible_counts={
            (int(e["bits"]), float(e["vdd"])): int(e["count"])
            for e in payload["feasible_counts"]
        },
        best_per_knob_point={
            (int(e["bits"]), float(e["vdd"])): _point_from_dict(e["point"])
            for e in payload["best_per_knob_point"]
        },
    )
