"""JSON persistence for exploration results and compiled mode tables.

Explorations of the big designs take seconds to minutes; systems built on
the mode tables (runtime controllers, SoC composition, the serve layer)
want to load them without re-running the flow.  Two artifacts live here:

* the full :class:`ExplorationResult` (every knob-grid statistic), and
* the compiled :class:`repro.serve.table.ModeTable` the serving
  subsystem consumes (`repro compile-table` / `repro serve`).

Both JSON schemas are versioned; loaders reject a mismatched version with
a clear error instead of guessing.
"""

from __future__ import annotations

import json
from typing import Dict, TextIO

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.exploration import ExplorationResult

SCHEMA_VERSION = 1


def _point_to_dict(point: OperatingPoint) -> Dict:
    return point.to_dict()


def _point_from_dict(data: Dict) -> OperatingPoint:
    return OperatingPoint.from_dict(data)


def save_exploration(result: ExplorationResult, stream: TextIO) -> None:
    """Serialize an exploration result (mode tables + statistics) as JSON."""
    payload = {
        "schema": SCHEMA_VERSION,
        "design_name": result.design_name,
        "num_domains": result.num_domains,
        "points_evaluated": result.points_evaluated,
        "points_feasible": result.points_feasible,
        "runtime_s": result.runtime_s,
        "settings": {
            "bitwidths": list(result.settings.bitwidths),
            "vdd_values": list(result.settings.vdd_values),
            "activity_cycles": result.settings.activity_cycles,
            "activity_batch": result.settings.activity_batch,
            "seed": result.settings.seed,
        },
        "best_per_bitwidth": {
            str(bits): _point_to_dict(point)
            for bits, point in result.best_per_bitwidth.items()
        },
        "best_per_knob_point": [
            {"bits": bits, "vdd": vdd, "point": _point_to_dict(point)}
            for (bits, vdd), point in result.best_per_knob_point.items()
        ],
        "feasible_counts": [
            {"bits": bits, "vdd": vdd, "count": count}
            for (bits, vdd), count in result.feasible_counts.items()
        ],
    }
    json.dump(payload, stream, indent=2)


def load_exploration(stream: TextIO) -> ExplorationResult:
    """Load an exploration result saved by :func:`save_exploration`."""
    payload = json.load(stream)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported exploration schema {payload.get('schema')!r} "
            f"(this build reads schema {SCHEMA_VERSION}); re-run the "
            "exploration to regenerate the artifact"
        )
    settings = ExplorationSettings(
        bitwidths=tuple(payload["settings"]["bitwidths"]),
        vdd_values=tuple(payload["settings"]["vdd_values"]),
        activity_cycles=int(payload["settings"]["activity_cycles"]),
        activity_batch=int(payload["settings"]["activity_batch"]),
        seed=int(payload["settings"]["seed"]),
    )
    return ExplorationResult(
        design_name=payload["design_name"],
        settings=settings,
        num_domains=int(payload["num_domains"]),
        best_per_bitwidth={
            int(bits): _point_from_dict(point)
            for bits, point in payload["best_per_bitwidth"].items()
        },
        points_evaluated=int(payload["points_evaluated"]),
        points_feasible=int(payload["points_feasible"]),
        runtime_s=float(payload["runtime_s"]),
        feasible_counts={
            (int(e["bits"]), float(e["vdd"])): int(e["count"])
            for e in payload["feasible_counts"]
        },
        best_per_knob_point={
            (int(e["bits"]), float(e["vdd"])): _point_from_dict(e["point"])
            for e in payload["best_per_knob_point"]
        },
    )


def save_mode_table(table, stream: TextIO) -> None:
    """Serialize a compiled :class:`repro.serve.table.ModeTable` as JSON."""
    json.dump(table.to_dict(), stream, indent=2)


def load_mode_table(stream: TextIO):
    """Load a mode table saved by :func:`save_mode_table`.

    Rejects artifacts with a mismatched schema version (the check lives
    in :meth:`repro.serve.table.ModeTable.from_dict`) and surfaces
    unparseable JSON as the same :class:`~repro.serve.errors.ServeError`
    every other table defect raises.
    """
    from repro.serve.errors import ServeError
    from repro.serve.table import ModeTable

    try:
        payload = json.load(stream)
    except json.JSONDecodeError as exc:
        raise ServeError(
            f"mode-table file is not valid JSON ({exc}); re-run "
            "`repro compile-table` to regenerate the artifact"
        ) from exc
    return ModeTable.from_dict(payload)
