"""DEF (Design Exchange Format) placement writer.

Emits the DIEAREA, ROW, COMPONENTS (placed cells) and PINS sections of a
DEF file so a placement -- including the enlarged, guardband-separated die
of a domained design -- can be inspected in any layout viewer.  Distances
use the customary 1000 database units per micron.
"""

from __future__ import annotations

from typing import TextIO

from repro.pnr.placer import PlacementResult

DBU_PER_MICRON = 1000


def _dbu(um: float) -> int:
    return int(round(um * DBU_PER_MICRON))


def write_def(placement: PlacementResult, stream: TextIO) -> None:
    """Write *placement* as DEF 5.8 text."""
    netlist = placement.netlist
    plan = placement.floorplan

    stream.write('VERSION 5.8 ;\nDIVIDERCHAR "/" ;\nBUSBITCHARS "[]" ;\n')
    stream.write(f"DESIGN {netlist.name} ;\n")
    stream.write(f"UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;\n\n")
    stream.write(
        f"DIEAREA ( 0 0 ) ( {_dbu(plan.width_um)} {_dbu(plan.height_um)} ) ;\n\n"
    )

    for row in range(plan.num_rows):
        y = _dbu(row * plan.row_height_um)
        orientation = "N" if row % 2 == 0 else "FS"
        stream.write(
            f"ROW row_{row} unit 0 {y} {orientation} "
            f"DO {_dbu(plan.width_um)} BY 1 STEP 1 0 ;\n"
        )
    stream.write("\n")

    stream.write(f"COMPONENTS {len(netlist.cells)} ;\n")
    for cell in netlist.cells:
        x, y = cell.position
        master = f"{cell.template.name}_{cell.drive_name}"
        half_width = cell.area_um2 / plan.row_height_um / 2.0
        origin_x = _dbu(x - half_width)
        origin_y = _dbu(y - plan.row_height_um / 2.0)
        group = (
            f" + PROPERTY vth_domain {cell.domain}"
            if cell.domain is not None
            else ""
        )
        stream.write(
            f"  - {cell.name} {master} + PLACED "
            f"( {origin_x} {origin_y} ) N{group} ;\n"
        )
    stream.write("END COMPONENTS\n\n")

    pins = []
    for bus in list(netlist.input_buses.values()) + list(
        netlist.output_buses.values()
    ):
        direction = "INPUT" if bus.is_input else "OUTPUT"
        for net in bus.nets:
            location = placement.port_positions.get(net.index)
            if location is None:
                continue
            pins.append((net.name, direction, location))
    if netlist.clock_net is not None:
        pins.append((netlist.clock_net.name, "INPUT", (0.0, 0.0)))

    stream.write(f"PINS {len(pins)} ;\n")
    for name, direction, (x, y) in pins:
        stream.write(
            f"  - {name} + NET {name} + DIRECTION {direction} "
            f"+ PLACED ( {_dbu(x)} {_dbu(y)} ) N ;\n"
        )
    stream.write("END PINS\n\nEND DESIGN\n")
