"""Gate-level generators for the paper's three evaluation operators.

Each generator produces a registered (input DFFs, output DFFs) gate-level
netlist mapped onto :mod:`repro.techlib`:

* :func:`repro.operators.booth.booth_multiplier` -- radix-4 Booth multiplier
  with Wallace-tree reduction (the paper's first design, Fig. 5a),
* :func:`repro.operators.fir.fir_filter` -- 30-tap MAC-based FIR datapath
  (Fig. 5c),
* :func:`repro.operators.butterfly.fft_butterfly` -- FFT butterfly with a
  three-multiplier complex multiply (Fig. 5b),

plus the building blocks (adders, Wallace reduction, Booth encoding, MAC)
they are assembled from.
"""

from repro.operators.adders import (
    ripple_carry_adder,
    kogge_stone_adder,
    brent_kung_adder,
    carry_select_adder,
    subtractor,
)
from repro.operators.multiplier import array_multiplier
from repro.operators.booth import booth_multiplier
from repro.operators.fir import fir_filter, FirParameters
from repro.operators.butterfly import fft_butterfly
from repro.operators.mac import multiply_accumulate
from repro.operators.datapath import adequate_adder, l1_norm
from repro.operators.cordic import cordic_rotator
from repro.operators.divider import divider

__all__ = [
    "ripple_carry_adder",
    "kogge_stone_adder",
    "brent_kung_adder",
    "carry_select_adder",
    "subtractor",
    "array_multiplier",
    "booth_multiplier",
    "fir_filter",
    "FirParameters",
    "fft_butterfly",
    "multiply_accumulate",
    "adequate_adder",
    "l1_norm",
    "cordic_rotator",
    "divider",
]
