"""Multiply-accumulate building block."""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.operators.adders import carry_select_adder, sign_extend
from repro.operators.booth import booth_multiply_core


def multiply_accumulate(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    accumulator_width: int,
    clear: Optional[Net] = None,
) -> List[Net]:
    """A signed MAC: ``acc <= (clear ? 0 : acc) + a * b`` every cycle.

    Builds the Booth multiplier core, sign-extends the product to
    *accumulator_width*, adds the accumulator register value with a
    carry-select adder and registers the result.  Returns the accumulator
    output (the register Q nets), LSB first.

    When *clear* is given, asserting it makes the next accumulated value
    start from zero (AND-gating of the feedback), which is how the serial
    FIR begins a new output sample.
    """
    if accumulator_width < len(a) + len(b):
        raise ValueError(
            f"accumulator width {accumulator_width} cannot hold a "
            f"{len(a)}x{len(b)} product"
        )
    product = booth_multiply_core(builder, a, b)
    product = sign_extend(product, accumulator_width)

    # Placeholder feedback nets: DFFs are created after the adder exists,
    # so route the feedback through explicitly named nets.
    acc_q: List[Net] = [
        builder.netlist.add_net(builder.unique_name("acc_q"))
        for _ in range(accumulator_width)
    ]
    feedback = acc_q
    if clear is not None:
        hold = builder.inv(clear)
        feedback = [builder.and2(bit, hold) for bit in acc_q]
    total, _carry = carry_select_adder(
        builder, product, feedback, need_cout=False
    )

    # Create the accumulator flip-flops, wiring their Q pins onto the
    # placeholder nets so the feedback loop closes.
    dff_template = builder.library.template("DFF")
    if builder.netlist.clock_net is None:
        raise ValueError("declare the clock before building a MAC")
    for d_net, q_net in zip(total, acc_q):
        builder.netlist.add_cell(
            builder.unique_name("accreg"),
            dff_template,
            [d_net, builder.netlist.clock_net],
            [q_net],
            drive_name=builder.default_drive,
        )
    return acc_q
