"""Serial MAC-based 30-tap FIR filter datapath.

The paper's second evaluation design is a "30-tap FIR filter" whose post-P&R
area is ~3.5x the Booth multiplier -- far too small for thirty parallel
multipliers, so it is the classic resource-shared implementation: one MAC,
a 30-word sample delay line, a tap-select multiplexer tree and a modulo-30
tap counter.  Coefficients stream in through the ``C`` input port in sync
with the exported ``TAP`` counter (an external coefficient store is assumed,
as the paper assumes external accuracy-control logic).

Cycle-accurate semantics (mirrored bit-exactly by
:func:`repro.sim.golden.fir_reference`):

* ``wrap  = (count == taps-1)``; ``first = (count == 0)``
* ``acc'  = (first ? 0 : acc) + delay[count] * c_reg``  (signed, modulo
  2**acc_width)
* ``count' = wrap ? 0 : count + 1``
* on ``wrap``: ``delay' = [X] + delay[:-1]`` (new sample shifts in)
* ``c_reg' = C`` (registered coefficient input)

The full sum of a sample is therefore available on ``Y`` (the accumulator
register) during the cycle after ``count`` returns to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import List, Optional

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.mac import multiply_accumulate
from repro.techlib.library import Library


@dataclass(frozen=True)
class FirParameters:
    """Static configuration of the serial FIR datapath."""

    taps: int = 30
    width: int = 16

    @property
    def counter_bits(self) -> int:
        return max(1, ceil(log2(self.taps)))

    @property
    def accumulator_width(self) -> int:
        """Product width plus growth for summing *taps* products."""
        return 2 * self.width + ceil(log2(self.taps))


def _counter(
    builder: NetlistBuilder, params: FirParameters
) -> (List[Net], Net, Net):
    """Modulo-*taps* counter; returns (count Q bits, wrap, is_zero)."""
    bits = params.counter_bits
    count_q = [builder.netlist.add_net(builder.unique_name("cnt_q")) for _ in range(bits)]

    # wrap = (count == taps-1)
    last = params.taps - 1
    wrap_terms = [
        count_q[i] if (last >> i) & 1 else builder.inv(count_q[i])
        for i in range(bits)
    ]
    wrap = wrap_terms[0]
    for term in wrap_terms[1:]:
        wrap = builder.and2(wrap, term)

    # is_zero = NOR of all count bits.
    any_bit = count_q[0]
    for bit in count_q[1:]:
        any_bit = builder.or2(any_bit, bit)
    is_zero = builder.inv(any_bit)

    # count + 1 via half-adder chain, then reset-to-zero mux on wrap.
    carry = builder.const(True)
    next_bits: List[Net] = []
    for i in range(bits):
        s, carry = builder.half_adder(count_q[i], carry)
        next_bits.append(s)
    hold_zero = builder.inv(wrap)
    next_bits = [builder.and2(bit, hold_zero) for bit in next_bits]

    dff_template = builder.library.template("DFF")
    for d_net, q_net in zip(next_bits, count_q):
        builder.netlist.add_cell(
            builder.unique_name("cntreg"), dff_template,
            [d_net, builder.netlist.clock_net], [q_net],
            drive_name=builder.default_drive,
        )
    return count_q, wrap, is_zero


def _delay_line(
    builder: NetlistBuilder,
    x_in: List[Net],
    shift_enable: Net,
    params: FirParameters,
) -> List[List[Net]]:
    """The *taps*-word sample shift register with shift enable."""
    stages: List[List[Net]] = []
    previous = x_in
    for stage in range(params.taps):
        q_nets = [
            builder.netlist.add_net(builder.unique_name(f"dl{stage}_q"))
            for _ in range(params.width)
        ]
        dff_template = builder.library.template("DFF")
        for bit in range(params.width):
            held = builder.mux2(q_nets[bit], previous[bit], shift_enable)
            builder.netlist.add_cell(
                builder.unique_name(f"dl{stage}_reg"), dff_template,
                [held, builder.netlist.clock_net], [q_nets[bit]],
                drive_name=builder.default_drive,
            )
        stages.append(q_nets)
        previous = q_nets
    return stages


def _tap_mux_tree(
    builder: NetlistBuilder,
    stages: List[List[Net]],
    select: List[Net],
    params: FirParameters,
) -> List[Net]:
    """Binary MUX2 tree selecting ``stages[select]``, one tree per bit."""
    entries = 1 << params.counter_bits
    zero = builder.const(False)
    selected: List[Net] = []
    for bit in range(params.width):
        level = [
            stages[i][bit] if i < params.taps else zero for i in range(entries)
        ]
        for sel_bit in select:
            level = [
                builder.mux2(level[2 * i], level[2 * i + 1], sel_bit)
                for i in range(len(level) // 2)
            ]
        selected.append(level[0])
    return selected


def fir_filter(
    library: Library,
    params: FirParameters = FirParameters(),
    name: Optional[str] = None,
) -> Netlist:
    """Build the complete serial FIR datapath netlist.

    Ports: ``X`` (sample in), ``C`` (coefficient in), ``Y`` (accumulator
    out, ``params.accumulator_width`` bits), ``TAP`` (the tap counter,
    letting the surrounding system stream the right coefficient), ``clk``.
    """
    builder = NetlistBuilder(name or f"fir{params.taps}", library)
    x_in = builder.input_bus("X", params.width)
    c_in = builder.input_bus("C", params.width)
    builder.clock()

    count_q, wrap, is_zero = _counter(builder, params)
    stages = _delay_line(builder, x_in, wrap, params)
    tap_word = _tap_mux_tree(builder, stages, count_q, params)
    c_reg = builder.register_word(c_in, "regc")

    acc = multiply_accumulate(
        builder, tap_word, c_reg, params.accumulator_width, clear=is_zero
    )

    builder.output_bus("Y", acc)
    builder.output_bus("TAP", count_q, signed=False)
    return builder.build()
