"""Wallace-tree (carry-save) column reduction."""

from __future__ import annotations

from typing import List, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net

#: A bit matrix: columns[c] is the list of nets with weight 2**c.
BitColumns = List[List[Net]]


def reduction_stages(columns: BitColumns) -> int:
    """Number of Wallace stages needed to reduce *columns* to height 2."""
    height = max((len(col) for col in columns), default=0)
    stages = 0
    while height > 2:
        height = 2 * (height // 3) + height % 3
        stages += 1
    return stages


def wallace_reduce(
    builder: NetlistBuilder, columns: BitColumns
) -> Tuple[List[Net], List[Net]]:
    """Reduce a bit matrix to two rows with full/half adders.

    Classic Wallace scheme: at every stage, each column is grouped into
    triples (full adder: sum stays, carry moves one column up) and, if two
    bits remain, a pair (half adder).  Iterates until every column holds at
    most two bits, then returns the two addend rows (LSB first, padded with
    constant-0 nets so both have the full width).
    """
    width = len(columns)
    current = [list(col) for col in columns]
    while max((len(col) for col in current), default=0) > 2:
        nxt: BitColumns = [[] for _ in range(width)]
        for c, col in enumerate(current):
            # In the top column a carry would have weight 2**width, which
            # two's-complement arithmetic drops -- so its adders degenerate
            # to plain XOR (sum-only) gates, as synthesis would build them.
            top = c == width - 1
            i = 0
            while len(col) - i >= 3:
                if top:
                    s = builder.xor2(builder.xor2(col[i], col[i + 1]), col[i + 2])
                else:
                    s, co = builder.full_adder(col[i], col[i + 1], col[i + 2])
                    nxt[c + 1].append(co)
                nxt[c].append(s)
                i += 3
            remaining = len(col) - i
            if remaining == 2:
                if top:
                    s = builder.xor2(col[i], col[i + 1])
                else:
                    s, co = builder.half_adder(col[i], col[i + 1])
                    nxt[c + 1].append(co)
                nxt[c].append(s)
            elif remaining == 1:
                nxt[c].append(col[i])
        current = nxt

    zero = builder.const(False)
    row_a: List[Net] = []
    row_b: List[Net] = []
    for col in current:
        row_a.append(col[0] if len(col) >= 1 else zero)
        row_b.append(col[1] if len(col) >= 2 else zero)
    return row_a, row_b


def columns_from_rows(rows: List[Tuple[int, List[Net]]], width: int) -> BitColumns:
    """Build a bit matrix from weighted rows.

    *rows* is a list of ``(shift, bits)`` pairs: each bit ``bits[j]`` lands
    in column ``shift + j``.  Bits beyond *width* are discarded (modulo
    2**width arithmetic).
    """
    columns: BitColumns = [[] for _ in range(width)]
    for shift, bits in rows:
        for j, net in enumerate(bits):
            column = shift + j
            if 0 <= column < width:
                columns[column].append(net)
    return columns
