"""Additional adequate-computing datapath operators.

Beyond the paper's three evaluation designs, the adequate-hardware
literature it builds on targets other "meta-functions" (Mohapatra et al.,
DATE'11, the paper's [12]): plain adders and distance kernels like the L1
norm.  These generators let users apply the flow to those operators too.
"""

from __future__ import annotations

from math import ceil, log2
from typing import List, Optional

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.adders import (
    carry_select_adder,
    sign_extend,
    subtractor,
)
from repro.techlib.library import Library


def adequate_adder(
    library: Library,
    width: int = 16,
    name: Optional[str] = None,
    registered: bool = True,
) -> Netlist:
    """A registered signed adder operator (ports ``A``, ``B`` -> ``S``).

    The sum is ``width + 1`` bits so no overflow information is lost; LSB
    gating of A and B scales its accuracy exactly as for the multiplier.
    """
    builder = NetlistBuilder(name or f"adder{width}", library)
    a_in = builder.input_bus("A", width)
    b_in = builder.input_bus("B", width)
    if registered:
        builder.clock()
        a = builder.register_word(a_in, "rega")
        b = builder.register_word(b_in, "regb")
    else:
        a, b = a_in, b_in
    total, _ = carry_select_adder(
        builder,
        sign_extend(a, width + 1),
        sign_extend(b, width + 1),
        need_cout=False,
    )
    if registered:
        total = builder.register_word(total, "regs")
    builder.output_bus("S", total)
    return builder.build()


def _absolute_value(builder: NetlistBuilder, word: List[Net]) -> List[Net]:
    """|word| for a signed word: conditional invert + increment.

    ``abs(x) = (x XOR s) + s`` with *s* the sign bit; the increment is a
    half-adder chain seeded by the sign.  The result keeps the input width
    (|INT_MIN| wraps, as in two's-complement hardware).
    """
    sign = word[-1]
    flipped = [builder.xor2(bit, sign) for bit in word]
    out: List[Net] = []
    carry = sign
    for bit in flipped[:-1]:
        s, carry = builder.half_adder(bit, carry)
        out.append(s)
    out.append(builder.xor2(flipped[-1], carry))
    return out


def l1_norm(
    library: Library,
    elements: int = 4,
    width: int = 8,
    name: Optional[str] = None,
    registered: bool = True,
) -> Netlist:
    """The L1-norm kernel: ``Y = sum_i |A_i - B_i|``.

    Ports: one input bus per element and operand (``A0..A{n-1}``,
    ``B0..B{n-1}``, each *width* bits signed) and the output ``Y`` wide
    enough for the full sum.  A typical error-tolerant kernel (motion
    estimation / nearest-neighbour search) whose accuracy scales with the
    operand bitwidth.
    """
    if elements < 1:
        raise ValueError("need at least one element")
    builder = NetlistBuilder(name or f"l1norm{elements}x{width}", library)
    a_buses = [builder.input_bus(f"A{i}", width) for i in range(elements)]
    b_buses = [builder.input_bus(f"B{i}", width) for i in range(elements)]
    if registered:
        builder.clock()
        a_buses = [builder.register_word(bus, f"rega{i}")
                   for i, bus in enumerate(a_buses)]
        b_buses = [builder.register_word(bus, f"regb{i}")
                   for i, bus in enumerate(b_buses)]

    diff_width = width + 1
    terms: List[List[Net]] = []
    for a, b in zip(a_buses, b_buses):
        diff, _ = subtractor(
            builder,
            sign_extend(a, diff_width),
            sign_extend(b, diff_width),
            adder=carry_select_adder,
            need_cout=False,
        )
        terms.append(_absolute_value(builder, diff))

    out_width = diff_width + ceil(log2(elements)) if elements > 1 else diff_width
    zero = builder.const(False)
    padded = [term + [zero] * (out_width - len(term)) for term in terms]
    while len(padded) > 1:
        merged = []
        for i in range(0, len(padded) - 1, 2):
            total, _ = carry_select_adder(
                builder, padded[i], padded[i + 1], need_cout=False
            )
            merged.append(total)
        if len(padded) % 2:
            merged.append(padded[-1])
        padded = merged
    result = padded[0]

    if registered:
        result = builder.register_word(result, "regy")
    builder.output_bus("Y", result, signed=False)
    return builder.build()
