"""Unsigned array multiplier (AND-matrix + Wallace reduction).

Used by tests as a simple, independently-verifiable multiplier and by the
wall-of-slack demonstration; the paper's evaluation design is the Booth
multiplier in :mod:`repro.operators.booth`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.adders import carry_select_adder
from repro.operators.wallace import columns_from_rows, wallace_reduce
from repro.techlib.library import Library


def array_multiply_core(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    adder=carry_select_adder,
) -> List[Net]:
    """Unsigned product of *a* and *b*; returns len(a)+len(b) bits LSB first."""
    width_out = len(a) + len(b)
    rows = []
    for i, b_bit in enumerate(b):
        rows.append((i, [builder.and2(a_bit, b_bit) for a_bit in a]))
    columns = columns_from_rows(rows, width_out)
    row_a, row_b = wallace_reduce(builder, columns)
    product, _carry = adder(builder, row_a, row_b, need_cout=False)
    return product


def array_multiplier(
    library: Library,
    width: int = 16,
    name: Optional[str] = None,
    registered: bool = True,
) -> Netlist:
    """A complete unsigned *width* x *width* array multiplier netlist.

    Ports: inputs ``A``/``B`` (*width* bits), output ``P`` (2 * *width*
    bits), plus ``clk`` and I/O registers when *registered* (the default,
    matching the reg-to-reg timing methodology of the paper).
    """
    builder = NetlistBuilder(name or f"array_mult{width}", library)
    a_in = builder.input_bus("A", width)
    b_in = builder.input_bus("B", width)
    if registered:
        builder.clock()
        a = builder.register_word(a_in, "rega")
        b = builder.register_word(b_in, "regb")
    else:
        a, b = a_in, b_in
    product = array_multiply_core(builder, a, b)
    if registered:
        product = builder.register_word(product, "regp")
    builder.output_bus("P", product)
    return builder.build()
