"""Adder generators: ripple-carry, Kogge-Stone, Brent-Kung, subtractor.

All functions take bit lists LSB first and return bit lists LSB first.
They add gates to an existing :class:`~repro.netlist.builder.NetlistBuilder`
so operators can compose them freely.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net


def _check_widths(a: List[Net], b: List[Net]) -> int:
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("zero-width addition")
    return len(a)


def ripple_carry_adder(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    cin: Optional[Net] = None,
    need_cout: bool = True,
) -> Tuple[List[Net], Optional[Net]]:
    """Chain of full adders; returns (sum bits, carry out).

    Smallest area, longest carry chain -- used for narrow or non-critical
    additions.  With ``need_cout=False`` the top bit degenerates to a
    sum-only XOR pair (as synthesis trims unused carry logic) and the
    returned carry is ``None``.
    """
    width = _check_widths(a, b)
    carry = cin if cin is not None else builder.const(False)
    sums: List[Net] = []
    for i in range(width):
        if i == width - 1 and not need_cout:
            sums.append(builder.xor2(builder.xor2(a[i], b[i]), carry))
            return sums, None
        s, carry = builder.full_adder(a[i], b[i], carry)
        sums.append(s)
    return sums, carry


def _propagate_generate(
    builder: NetlistBuilder, a: List[Net], b: List[Net]
) -> Tuple[List[Net], List[Net]]:
    """Bitwise propagate (XOR) and generate (AND) signals."""
    p = [builder.xor2(ai, bi) for ai, bi in zip(a, b)]
    g = [builder.and2(ai, bi) for ai, bi in zip(a, b)]
    return p, g


def _prefix_combine(
    builder: NetlistBuilder,
    g_hi: Net,
    p_hi: Net,
    g_lo: Net,
    p_lo: Net,
    need_p: bool,
) -> Tuple[Net, Optional[Net]]:
    """The associative prefix operator (g, p) o (g', p')."""
    g_out = builder.or2(g_hi, builder.and2(p_hi, g_lo))
    p_out = builder.and2(p_hi, p_lo) if need_p else None
    return g_out, p_out


def _sum_from_carries(
    builder: NetlistBuilder,
    p: List[Net],
    carries: List[Net],
) -> List[Net]:
    return [builder.xor2(pi, ci) for pi, ci in zip(p, carries)]


def kogge_stone_adder(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    cin: Optional[Net] = None,
    need_cout: bool = True,
) -> Tuple[List[Net], Optional[Net]]:
    """Radix-2 Kogge-Stone parallel-prefix adder; returns (sum, carry out).

    Logarithmic depth with full fanout-of-one prefix tree -- the fast adder
    a synthesis tool picks for timing-critical additions.  With
    ``need_cout=False`` the top prefix node (used only by the carry out) is
    not built and the returned carry is ``None``.
    """
    width = _check_widths(a, b)
    p, g = _propagate_generate(builder, a, b)
    # Prefix arrays: after the sweep, g_pfx[i] = generate of bits [0..i].
    g_pfx = list(g)
    p_pfx = list(p)
    top = width - 1
    distance = 1
    while distance < width:
        next_g = list(g_pfx)
        next_p = list(p_pfx)
        for i in range(distance, width):
            if i == top and not need_cout:
                continue
            g_new, p_new = _prefix_combine(
                builder, g_pfx[i], p_pfx[i], g_pfx[i - distance], p_pfx[i - distance],
                need_p=True,
            )
            next_g[i] = g_new
            next_p[i] = p_new
        g_pfx, p_pfx = next_g, next_p
        distance *= 2

    if cin is None:
        carries = [builder.const(False)] + g_pfx[:-1]
        cout = g_pfx[-1] if need_cout else None
    else:
        # c_i = G[0..i-1] | (P[0..i-1] & cin)
        carries = [cin]
        for i in range(width - 1):
            carries.append(
                builder.or2(g_pfx[i], builder.and2(p_pfx[i], cin))
            )
        cout = (
            builder.or2(g_pfx[-1], builder.and2(p_pfx[-1], cin))
            if need_cout
            else None
        )
    sums = _sum_from_carries(builder, p, carries)
    return sums, cout


def brent_kung_adder(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    cin: Optional[Net] = None,
    need_cout: bool = True,
) -> Tuple[List[Net], Optional[Net]]:
    """Brent-Kung parallel-prefix adder; returns (sum, carry out).

    About half the prefix nodes of Kogge-Stone at roughly twice the prefix
    depth -- the area-efficient fast adder, used where the adder is not the
    critical path.  ``need_cout=False`` skips the prefix nodes only the
    carry out needs and returns ``None`` for it.
    """
    width = _check_widths(a, b)
    p, g = _propagate_generate(builder, a, b)
    g_span = list(g)  # g_span[i], p_span[i]: (g,p) over a power-of-two span ending at i
    p_span = list(p)
    top = width - 1

    # Up-sweep: build power-of-two spans.
    distance = 1
    while distance < width:
        for i in range(2 * distance - 1, width, 2 * distance):
            if i == top and not need_cout:
                continue
            g_new, p_new = _prefix_combine(
                builder, g_span[i], p_span[i],
                g_span[i - distance], p_span[i - distance], need_p=True,
            )
            g_span[i], p_span[i] = g_new, p_new
        distance *= 2

    # Down-sweep: fill in the remaining prefixes.
    distance //= 2
    while distance >= 1:
        for i in range(3 * distance - 1, width, 2 * distance):
            if i == top and not need_cout:
                continue
            g_new, p_new = _prefix_combine(
                builder, g_span[i], p_span[i],
                g_span[i - distance], p_span[i - distance], need_p=True,
            )
            g_span[i], p_span[i] = g_new, p_new
        distance //= 2

    if cin is None:
        carries = [builder.const(False)] + g_span[:-1]
        cout = g_span[-1] if need_cout else None
    else:
        carries = [cin]
        for i in range(width - 1):
            carries.append(builder.or2(g_span[i], builder.and2(p_span[i], cin)))
        cout = (
            builder.or2(g_span[-1], builder.and2(p_span[-1], cin))
            if need_cout
            else None
        )
    sums = _sum_from_carries(builder, p, carries)
    return sums, cout


def carry_select_adder(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    cin: Optional[Net] = None,
    block_size: int = 4,
    need_cout: bool = True,
) -> Tuple[List[Net], Optional[Net]]:
    """Carry-select adder with ripple blocks; returns (sum, carry out).

    Each *block_size*-bit block ripples twice (assumed carry-in 0 and 1);
    the true block carry selects between the two via a MUX chain.  This is
    the classic speed/area compromise a synthesis tool lands on for
    mid-size additions, and -- crucial to the DVAS methodology -- its
    critical path *shrinks with the active input width*: when the low
    blocks see constant (LSB-gated) inputs, their carries become constant
    and the select chain only starts at the first active block.
    """
    width = _check_widths(a, b)
    if block_size < 1:
        raise ValueError("block_size must be >= 1")

    sums: List[Net] = []
    carry = cin if cin is not None else builder.const(False)
    start = 0
    first = True
    while start < width:
        end = min(start + block_size, width)
        last_block = end == width
        skip_carry = last_block and not need_cout
        if first:
            # First block ripples once with the real carry-in.
            for i in range(start, end):
                if skip_carry and i == end - 1:
                    sums.append(builder.xor2(builder.xor2(a[i], b[i]), carry))
                    carry = None
                else:
                    s, carry = builder.full_adder(a[i], b[i], carry)
                    sums.append(s)
            first = False
        else:
            zero = builder.const(False)
            one = builder.const(True)
            carry0, carry1 = zero, one
            sums0: List[Net] = []
            sums1: List[Net] = []
            for i in range(start, end):
                if skip_carry and i == end - 1:
                    s0 = builder.xor2(builder.xor2(a[i], b[i]), carry0)
                    s1 = builder.xor2(builder.xor2(a[i], b[i]), carry1)
                    carry0 = carry1 = None
                else:
                    s0, carry0 = builder.full_adder(a[i], b[i], carry0)
                    s1, carry1 = builder.full_adder(a[i], b[i], carry1)
                sums0.append(s0)
                sums1.append(s1)
            for s0, s1 in zip(sums0, sums1):
                sums.append(builder.mux2(s0, s1, carry))
            carry = (
                builder.mux2(carry0, carry1, carry) if not skip_carry else None
            )
        start = end
    return sums, carry


def subtractor(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    adder=kogge_stone_adder,
    need_cout: bool = True,
) -> Tuple[List[Net], Optional[Net]]:
    """Two's-complement subtraction ``a - b``; returns (difference, carry out).

    Implemented as ``a + ~b + 1`` with the requested *adder* generator.
    """
    b_inverted = [builder.inv(bit) for bit in b]
    return adder(
        builder, a, b_inverted, cin=builder.const(True), need_cout=need_cout
    )


def sign_extend(word: List[Net], width: int) -> List[Net]:
    """Sign-extend *word* to *width* bits by replicating the MSB net.

    No gates are added: the MSB net simply fans out to the new positions,
    exactly like abutting the same wire in layout.
    """
    if width < len(word):
        raise ValueError(f"cannot extend width {len(word)} down to {width}")
    return list(word) + [word[-1]] * (width - len(word))
