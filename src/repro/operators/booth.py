"""Signed radix-4 Booth multiplier with Wallace-tree reduction.

This is the paper's first evaluation design ("Booth multiplier with Wallace
tree", 16x16-bit, Fig. 5a and Fig. 6) and also the design whose endpoint
slack histogram illustrates the wall of slack (Fig. 1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.adders import carry_select_adder
from repro.operators.encoding import booth_encode, booth_partial_product
from repro.operators.wallace import columns_from_rows, wallace_reduce
from repro.techlib.library import Library


def _carry_save_rows(
    builder: NetlistBuilder, a: List[Net], b: List[Net]
) -> Tuple[List[Net], List[Net]]:
    """Booth PP generation + Wallace reduction down to two addend rows."""
    width_out = len(a) + len(b)
    groups = booth_encode(builder, b)
    rows = []
    for group in groups:
        pp = booth_partial_product(builder, a, group)
        shift = 2 * group.index
        # Sign-extend to the top column by replicating the PP sign net.
        extension = width_out - shift - len(pp)
        if extension > 0:
            pp = pp + [pp[-1]] * extension
        rows.append((shift, pp))
        # Two's-complement correction bit of a negated selection.
        rows.append((shift, [group.negate]))
    columns = columns_from_rows(rows, width_out)
    return wallace_reduce(builder, columns)


def booth_multiply_core(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    adder=carry_select_adder,
) -> List[Net]:
    """Signed (two's-complement) product ``a * b``, 2W bits LSB first.

    *a* is the multiplicand (any width >= 2); *b* is the Booth-encoded
    multiplier (even width).  Partial products are sign-extended by net
    replication (no gates), reduced in a Wallace tree, and summed by the
    requested fast *adder*.
    """
    row_a, row_b = _carry_save_rows(builder, a, b)
    product, _carry = adder(builder, row_a, row_b, need_cout=False)
    return product


def booth_multiplier(
    library: Library,
    width: int = 16,
    name: Optional[str] = None,
    registered: bool = True,
    adder=carry_select_adder,
    pipelined: bool = False,
) -> Netlist:
    """A complete signed *width* x *width* Booth/Wallace multiplier netlist.

    Ports: inputs ``A`` (multiplicand) and ``B`` (multiplier), both signed
    *width*-bit words; output ``P`` (2 * *width* bits).  With *registered*
    (default) the operator is wrapped in input/output flip-flops so every
    timing path is reg-to-reg, as in the paper's implementation flow.

    With *pipelined* (requires *registered*), a register stage is inserted
    between the Wallace tree's carry-save rows and the final adder: latency
    grows to three cycles but the critical path roughly halves, letting the
    flow close a faster clock -- a common datapath trade the rest of the
    methodology handles unchanged.
    """
    if width % 2 != 0:
        raise ValueError(f"Booth multiplier width {width} must be even")
    if pipelined and not registered:
        raise ValueError("a pipelined multiplier must be registered")
    builder = NetlistBuilder(name or f"booth{width}", library)
    a_in = builder.input_bus("A", width)
    b_in = builder.input_bus("B", width)
    if registered:
        builder.clock()
        a = builder.register_word(a_in, "rega")
        b = builder.register_word(b_in, "regb")
    else:
        a, b = a_in, b_in
    if pipelined:
        row_a, row_b = _carry_save_rows(builder, a, b)
        row_a = builder.register_word(row_a, "pipea")
        row_b = builder.register_word(row_b, "pipeb")
        product, _carry = adder(builder, row_a, row_b, need_cout=False)
    else:
        product = booth_multiply_core(builder, a, b, adder=adder)
    if registered:
        product = builder.register_word(product, "regp")
    builder.output_bus("P", product)
    return builder.build()
