"""FFT butterfly unit (decimation-in-time radix-2).

The paper's third evaluation design is "a butterfly unit, i.e., the main
datapath component of a FFT accelerator".  This implementation computes

    A' = A + W * B          B' = A - W * B

on 16-bit fixed-point complex operands, with the complex product using the
three-multiplier Gauss/Karatsuba decomposition (the area-efficient form a
DSP datapath would use, and consistent with the paper's ~3x Booth area):

    k1 = wr * (br + bi)
    k2 = br * (wi - wr)
    k3 = bi * (wi + wr)
    Re(W*B) = k1 - k3        Im(W*B) = k1 + k2

Products are Q2.30-style full-precision words truncated back to 16 bits by
an arithmetic right shift of ``width - 1`` (mirrored bit-exactly by
:func:`repro.sim.golden.butterfly_reference`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.adders import (
    carry_select_adder,
    sign_extend,
    subtractor,
)
from repro.operators.booth import booth_multiply_core
from repro.techlib.library import Library


def _add17(builder: NetlistBuilder, a: List[Net], b: List[Net]) -> List[Net]:
    """Signed 16+16 -> 17-bit exact addition (operands sign-extended)."""
    width = len(a) + 1
    s, _ = carry_select_adder(
        builder, sign_extend(a, width), sign_extend(b, width)
    )
    return s


def _sub17(builder: NetlistBuilder, a: List[Net], b: List[Net]) -> List[Net]:
    """Signed 16-16 -> 17-bit exact subtraction."""
    width = len(a) + 1
    s, _ = subtractor(
        builder, sign_extend(a, width), sign_extend(b, width),
        adder=carry_select_adder,
    )
    return s


def fft_butterfly(
    library: Library,
    width: int = 16,
    name: Optional[str] = None,
) -> Netlist:
    """Build the complete registered FFT butterfly netlist.

    Ports (all *width*-bit signed): inputs ``AR``/``AI`` (the pass-through
    operand), ``BR``/``BI`` (the twiddled operand), ``WR``/``WI`` (the
    twiddle factor); outputs ``XR``/``XI`` = A + W*B and ``YR``/``YI`` =
    A - W*B; plus ``clk``.
    """
    builder = NetlistBuilder(name or f"butterfly{width}", library)
    buses = {p: builder.input_bus(p, width) for p in
             ("AR", "AI", "BR", "BI", "WR", "WI")}
    builder.clock()
    regs = {p: builder.register_word(nets, f"reg{p.lower()}")
            for p, nets in buses.items()}
    ar, ai = regs["AR"], regs["AI"]
    br, bi = regs["BR"], regs["BI"]
    wr, wi = regs["WR"], regs["WI"]

    # Three-multiplier complex product W * B.
    s1 = _add17(builder, br, bi)          # br + bi
    d1 = _sub17(builder, wi, wr)          # wi - wr
    s2 = _add17(builder, wi, wr)          # wi + wr
    k1 = booth_multiply_core(builder, s1, wr)   # 17 + 16 = 33 bits
    k2 = booth_multiply_core(builder, d1, br)
    k3 = booth_multiply_core(builder, s2, bi)

    prod_width = len(k1)
    real_full, _ = subtractor(
        builder, k1, k3, adder=carry_select_adder, need_cout=False
    )
    imag_full, _ = carry_select_adder(builder, k1, k2, need_cout=False)

    # Truncate Q-format products back to width bits: >> (width - 1).
    shift = width - 1
    wb_r = real_full[shift:shift + width]
    wb_i = imag_full[shift:shift + width]

    xr, _ = carry_select_adder(builder, ar, wb_r, need_cout=False)
    xi, _ = carry_select_adder(builder, ai, wb_i, need_cout=False)
    yr, _ = subtractor(
        builder, ar, wb_r, adder=carry_select_adder, need_cout=False
    )
    yi, _ = subtractor(
        builder, ai, wb_i, adder=carry_select_adder, need_cout=False
    )

    builder.output_bus("XR", builder.register_word(xr, "regxr"))
    builder.output_bus("XI", builder.register_word(xi, "regxi"))
    builder.output_bus("YR", builder.register_word(yr, "regyr"))
    builder.output_bus("YI", builder.register_word(yi, "regyi"))
    return builder.build()
