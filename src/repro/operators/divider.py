"""Unrolled non-restoring unsigned divider.

Division shows up in the same error-tolerant DSP pipelines as the paper's
operators (normalization, AGC, projective transforms) and is the
slowest-per-bit primitive of the set: its quotient bits resolve serially,
so the unrolled array is deep and narrow -- an interesting stress case for
the accuracy-scaling methodology (gating dividend LSBs deactivates the
*late* stages rather than a significance band).

Algorithm (classic non-restoring, W quotient bits):

    R_0 = N (zero-extended)      for each step i = W-1 .. 0:
    if R >= 0: R' = (R << 1 | n_i) - D   else: R' = (R << 1 | n_i) + D
    q_i = not sign(R')
    final fix-up: if R < 0: R += D

Ports: ``N`` (dividend), ``D`` (divisor), outputs ``Q`` (quotient) and
``R`` (remainder), all *width*-bit unsigned.  Division by zero yields
all-ones quotient, hardware-style.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.adders import carry_select_adder
from repro.techlib.library import Library


def _conditional_add_sub(
    builder: NetlistBuilder,
    r: List[Net],
    d: List[Net],
    subtract_when: Net,
) -> List[Net]:
    """``r - d`` when the control is 1, else ``r + d`` (shared adder)."""
    conditioned = [builder.xor2(bit, subtract_when) for bit in d]
    total, _ = carry_select_adder(
        builder, r, conditioned, cin=subtract_when, need_cout=False
    )
    return total


def divider(
    library: Library,
    width: int = 16,
    name: Optional[str] = None,
    registered: bool = True,
) -> Netlist:
    """Build the unrolled non-restoring divider netlist."""
    if width < 2:
        raise ValueError("width must be at least 2")
    builder = NetlistBuilder(name or f"div{width}", library)
    n = builder.input_bus("N", width)
    d = builder.input_bus("D", width)
    if registered:
        builder.clock()
        n = builder.register_word(n, "regn")
        d = builder.register_word(d, "regd")

    zero = builder.const(False)
    # Remainder register is width+1 bits (signed partial remainder).
    r_width = width + 1
    d_ext = list(d) + [zero]
    remainder: List[Net] = [zero] * r_width
    r_non_negative = builder.const(True)  # R_0 = 0 >= 0

    quotient_bits: List[Net] = []
    for i in reversed(range(width)):
        # Shift in the next dividend bit: R = (R << 1) | n_i.
        shifted = [n[i]] + remainder[:-1]
        remainder = _conditional_add_sub(builder, shifted, d_ext, r_non_negative)
        r_negative = remainder[-1]
        r_non_negative = builder.inv(r_negative)
        quotient_bits.append(r_non_negative)  # q_i, MSB first

    # Final correction: a negative remainder gets one divisor added back.
    masked_d = [builder.and2(bit, remainder[-1]) for bit in d_ext]
    corrected, _ = carry_select_adder(
        builder, remainder, masked_d, need_cout=False
    )

    quotient = list(reversed(quotient_bits))
    remainder_out = corrected[:width]
    if registered:
        quotient = builder.register_word(quotient, "regq")
        remainder_out = builder.register_word(remainder_out, "regr")
    builder.output_bus("Q", quotient, signed=False)
    builder.output_bus("R", remainder_out, signed=False)
    return builder.build()
