"""Radix-4 (modified) Booth encoding logic."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net


@dataclass
class BoothGroup:
    """Control signals of one radix-4 Booth group.

    The group selects a partial product from {0, +X, -X, +2X, -2X}:

    * ``single`` -- select X (possibly negated),
    * ``double`` -- select 2X (possibly negated),
    * ``negate`` -- complement the selection and add 1 at the group's
      weight (two's-complement negation, split as usual between the
      selector XOR and a correction bit in the reduction tree).
    """

    index: int
    single: Net
    double: Net
    negate: Net


def booth_encode(
    builder: NetlistBuilder, multiplier_bits: List[Net]
) -> List[BoothGroup]:
    """Encode the multiplier operand into radix-4 Booth groups.

    *multiplier_bits* is the signed multiplier word, LSB first; its width
    must be even (the standard case -- a 16-bit operand yields 8 groups).
    Group *i* inspects bits (y[2i+1], y[2i], y[2i-1]) with y[-1] = 0.
    """
    width = len(multiplier_bits)
    if width % 2 != 0:
        raise ValueError(f"multiplier width {width} must be even")
    zero = builder.const(False)
    groups: List[BoothGroup] = []
    for i in range(width // 2):
        y_lo = multiplier_bits[2 * i - 1] if i > 0 else zero
        y_mid = multiplier_bits[2 * i]
        y_hi = multiplier_bits[2 * i + 1]
        single = builder.xor2(y_mid, y_lo)
        double = builder.and2(builder.xor2(y_hi, y_mid), builder.inv(single))
        groups.append(BoothGroup(index=i, single=single, double=double, negate=y_hi))
    return groups


def booth_partial_product(
    builder: NetlistBuilder,
    multiplicand_bits: List[Net],
    group: BoothGroup,
) -> List[Net]:
    """Generate one Booth partial product, width W+1 bits, LSB first.

    Bit *j* implements ``negate XOR ((x[j] AND single) OR (x[j-1] AND
    double))`` with x[-1] = 0 and x[W] = x[W-1] (the sign copy needed when
    the 2X selection shifts the signed multiplicand left by one).

    The returned word is the *ones'-complement* part of the selection; the
    caller must add ``group.negate`` at the group's column weight to finish
    the two's-complement negation.
    """
    width = len(multiplicand_bits)
    extended = list(multiplicand_bits) + [multiplicand_bits[-1]]
    zero = builder.const(False)
    bits: List[Net] = []
    for j in range(width + 1):
        x_j = extended[j]
        x_prev = extended[j - 1] if j > 0 else zero
        selected = builder.or2(
            builder.and2(x_j, group.single),
            builder.and2(x_prev, group.double),
        )
        bits.append(builder.xor2(selected, group.negate))
    return bits
