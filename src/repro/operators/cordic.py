"""Unrolled CORDIC rotator.

CORDIC computes vector rotations with shift-and-add iterations -- the
textbook error-tolerant DSP kernel (each extra iteration buys ~1 bit of
angular precision), which makes it a natural fourth operator for the
adequate-computing methodology: input LSB gating composes with the
algorithm's own graceful precision behaviour.

The generator unrolls *iterations* rotation stages combinationally
(registered I/O), in circular rotation mode:

    x_{i+1} = x_i - d_i * (y_i >> i)
    y_{i+1} = y_i + d_i * (x_i >> i)
    z_{i+1} = z_i - d_i * atan(2^-i)

with ``d_i = sign(z_i)``, angles in a Q-format matching the data width.
Outputs are the rotated (x, y) scaled by the usual CORDIC gain (~1.6468),
and the residual angle z.  The golden model in :mod:`repro.sim.golden`
mirrors the arithmetic bit-exactly.
"""

from __future__ import annotations

from math import atan, pi
from typing import List, Optional, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.operators.adders import carry_select_adder, subtractor
from repro.techlib.library import Library


def cordic_angle_lsbs(iterations: int, width: int) -> List[int]:
    """atan(2^-i) for each iteration, quantized to the angle format.

    The angle format maps pi radians to 2^(width-1) LSBs, so the full
    signed range covers (-pi, pi).
    """
    scale = (1 << (width - 1)) / pi
    return [int(round(atan(2.0**-i) * scale)) for i in range(iterations)]


def _arithmetic_shift_right(word: List[Net], shift: int) -> List[Net]:
    """Wire-only arithmetic right shift (sign bit replicated)."""
    if shift <= 0:
        return list(word)
    kept = word[shift:]
    return kept + [word[-1]] * (len(word) - len(kept))


def _constant_word(builder: NetlistBuilder, value: int, width: int) -> List[Net]:
    """Tie-cell encoding of a two's-complement constant."""
    bits = []
    unsigned = value % (1 << width)
    for position in range(width):
        bits.append(builder.const(bool((unsigned >> position) & 1)))
    return bits


def _add_sub(
    builder: NetlistBuilder,
    a: List[Net],
    b: List[Net],
    subtract_when: Net,
) -> List[Net]:
    """Compute ``a + b`` or ``a - b`` selected by *subtract_when*.

    Implemented as ``a + (b XOR s) + s`` -- the standard shared
    adder/subtractor, so the choice costs one XOR per bit instead of a
    second adder.
    """
    conditioned = [builder.xor2(bit, subtract_when) for bit in b]
    total, _ = carry_select_adder(
        builder, a, conditioned, cin=subtract_when, need_cout=False
    )
    return total


def cordic_rotator(
    library: Library,
    width: int = 16,
    iterations: int = 12,
    name: Optional[str] = None,
    registered: bool = True,
) -> Netlist:
    """Build the unrolled CORDIC rotation netlist.

    Ports (all signed *width*-bit): inputs ``X``, ``Y`` (the vector) and
    ``Z`` (the rotation angle, pi == 2^(width-1) LSBs); outputs ``XO``,
    ``YO`` (rotated vector times the CORDIC gain) and ``ZO`` (residual
    angle, ideally ~0).
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if iterations > width:
        raise ValueError("iterations beyond the data width add nothing")
    builder = NetlistBuilder(name or f"cordic{width}x{iterations}", library)
    x = builder.input_bus("X", width)
    y = builder.input_bus("Y", width)
    z = builder.input_bus("Z", width)
    if registered:
        builder.clock()
        x = builder.register_word(x, "regx")
        y = builder.register_word(y, "regy")
        z = builder.register_word(z, "regz")

    angles = cordic_angle_lsbs(iterations, width)
    for i in range(iterations):
        # d_i = +1 when z >= 0 (rotate positive), else -1.  The sign bit
        # IS the "subtract" control for the x/z updates.
        z_negative = z[-1]
        z_non_negative = builder.inv(z_negative)

        y_shifted = _arithmetic_shift_right(y, i)
        x_shifted = _arithmetic_shift_right(x, i)
        angle = _constant_word(builder, angles[i], width)

        # x' = x - d*(y>>i):  subtract when d=+1 (z >= 0).
        x_next = _add_sub(builder, x, y_shifted, z_non_negative)
        # y' = y + d*(x>>i):  subtract when d=-1 (z < 0).
        y_next = _add_sub(builder, y, x_shifted, z_negative)
        # z' = z - d*atan:    subtract when d=+1.
        z_next = _add_sub(builder, z, angle, z_non_negative)
        x, y, z = x_next, y_next, z_next

    if registered:
        x = builder.register_word(x, "regxo")
        y = builder.register_word(y, "regyo")
        z = builder.register_word(z, "regzo")
    builder.output_bus("XO", x)
    builder.output_bus("YO", y)
    builder.output_bus("ZO", z)
    return builder.build()
