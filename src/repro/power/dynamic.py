"""Dynamic (switching) power model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.parasitics import Parasitics
from repro.sim.activity import ActivityReport


def switched_capacitance(
    netlist: Netlist, parasitics: Optional[Parasitics] = None
) -> np.ndarray:
    """Capacitance switched when each net toggles (fF), indexed by net.

    Wire capacitance (if extracted) plus every sink's input pin cap plus
    the driver's drain and internal capacitance.  Internal cap charges on
    output transitions, which folds cell-internal power into the same
    C*V^2 term.
    """
    caps = np.zeros(len(netlist.nets), dtype=np.float64)
    if parasitics is not None:
        caps += parasitics.wire_cap_ff
    for net in netlist.nets:
        total = 0.0
        for pin in net.sinks:
            total += pin.cell.drive.input_cap_ff
        if net.driver is not None:
            drive = net.driver.cell.drive
            total += drive.output_cap_ff + drive.internal_cap_ff
        caps[net.index] += total
    return caps


class DynamicPowerModel:
    """``P = 0.5 * sum_net(rate * C) * VDD^2 * f_clk``.

    Back bias does not change dynamic power to first order, so results
    depend only on (activity, VDD, frequency) -- one evaluation covers all
    2^NMAX BB assignments of an exploration point.
    """

    def __init__(self, netlist: Netlist, parasitics: Optional[Parasitics] = None):
        self.netlist = netlist
        self.parasitics = parasitics
        self.switched_cap_ff = switched_capacitance(netlist, parasitics)

    def refresh(self) -> None:
        """Re-read pin capacitances (call after a sizing pass)."""
        self.switched_cap_ff = switched_capacitance(self.netlist, self.parasitics)

    def total(
        self,
        activity: ActivityReport,
        vdd: float,
        frequency_ghz: float,
    ) -> float:
        """Total switching power in watts for one accuracy mode."""
        if len(activity.rates) != len(self.switched_cap_ff):
            raise ValueError(
                "activity report does not match this netlist "
                f"({len(activity.rates)} vs {len(self.switched_cap_ff)} nets)"
            )
        if frequency_ghz <= 0.0:
            raise ValueError("frequency must be positive")
        energy_per_cycle_ff_v2 = float(
            (activity.rates * self.switched_cap_ff).sum()
        )
        # 0.5 * C[fF -> F] * V^2 * f[GHz -> Hz]
        return 0.5 * energy_per_cycle_ff_v2 * 1e-15 * vdd**2 * frequency_ghz * 1e9
