"""Combined power reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.pnr.parasitics import Parasitics
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakageModel
from repro.sim.activity import ActivityReport


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of one operating point."""

    dynamic_w: float
    leakage_w: float
    vdd: float
    frequency_ghz: float
    active_bits: int

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    @property
    def leakage_fraction(self) -> float:
        total = self.total_w
        return self.leakage_w / total if total > 0.0 else 0.0

    def __str__(self) -> str:
        return (
            f"P={self.total_w * 1e3:.3f} mW "
            f"(dyn {self.dynamic_w * 1e3:.3f} / leak {self.leakage_w * 1e3:.3f}) "
            f"@ {self.vdd:.2f} V, {self.frequency_ghz:.2f} GHz, "
            f"{self.active_bits} bits"
        )


class PowerAnalyzer:
    """Binds the leakage and dynamic models of one implemented design."""

    def __init__(self, netlist: Netlist, parasitics: Optional[Parasitics] = None):
        self.netlist = netlist
        self.leakage = LeakageModel(netlist)
        self.dynamic = DynamicPowerModel(netlist, parasitics)

    def refresh(self) -> None:
        """Re-read electrical data after drive-strength changes."""
        self.leakage.refresh()
        self.dynamic.refresh()

    def report(
        self,
        activity: ActivityReport,
        vdd: float,
        frequency_ghz: float,
        fbb_cells: np.ndarray,
    ) -> PowerReport:
        """Power of one fully specified operating point."""
        return PowerReport(
            dynamic_w=self.dynamic.total(activity, vdd, frequency_ghz),
            leakage_w=self.leakage.total(vdd, fbb_cells),
            vdd=vdd,
            frequency_ghz=frequency_ghz,
            active_bits=activity.active_bits,
        )

    def total_batch(
        self,
        activity: ActivityReport,
        vdd: float,
        frequency_ghz: float,
        domains: np.ndarray,
        configs: np.ndarray,
    ) -> np.ndarray:
        """Total power (W) of every BB assignment at one (VDD, bitwidth)."""
        dynamic = self.dynamic.total(activity, vdd, frequency_ghz)
        return dynamic + self.leakage.total_batch(vdd, domains, configs)
