"""Power analysis: leakage + switching (the PrimeTime-PX equivalent).

Total power of an operating point is

* **leakage** -- per-cell sub-threshold leakage, a strong (exponential)
  function of the cell's Vth state (NoBB vs FBB) and supply, summed over
  domains according to the BB assignment (:mod:`leakage`);
* **dynamic** -- per-net ``0.5 * C * VDD^2 * f * toggle_rate`` with toggle
  rates annotated from logic simulation of the accuracy mode under
  analysis, and capacitance from wire extraction plus live pin/drain data
  (:mod:`dynamic`).

:mod:`analysis` combines both into reports the exploration ranks.
"""

from repro.power.leakage import LeakageModel
from repro.power.dynamic import DynamicPowerModel, switched_capacitance
from repro.power.analysis import PowerAnalyzer, PowerReport

__all__ = [
    "LeakageModel",
    "DynamicPowerModel",
    "switched_capacitance",
    "PowerAnalyzer",
    "PowerReport",
]
