"""Leakage power model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.techlib.library import Library


class LeakageModel:
    """Per-cell leakage, batched over back-bias configurations.

    Base leakages come from the cell drives (characterized at nominal VDD,
    NoBB); the library's leakage factor scales them to the analysis corner.
    State (input-pattern) dependence of leakage is not modelled -- a
    uniform average is baked into the per-cell numbers, which is the usual
    first-order simplification.
    """

    def __init__(self, netlist: Netlist, library: Optional[Library] = None):
        self.netlist = netlist
        self.library = library or netlist.library
        self.base_leak_w = np.asarray(
            [cell.drive.leakage_nw * 1e-9 for cell in netlist.cells],
            dtype=np.float64,
        )

    def refresh(self) -> None:
        """Re-read drive strengths (call after a sizing pass)."""
        self.base_leak_w = np.asarray(
            [cell.drive.leakage_nw * 1e-9 for cell in self.netlist.cells],
            dtype=np.float64,
        )

    def total(self, vdd: float, fbb_cells: np.ndarray) -> float:
        """Total leakage (W) with the given per-cell Vth states."""
        fbb_cells = np.asarray(fbb_cells, dtype=bool)
        f_nobb = self.library.leakage_factor(self.library.nobb_corner(vdd))
        f_fbb = self.library.leakage_factor(self.library.fbb_corner(vdd))
        factors = np.where(fbb_cells, f_fbb, f_nobb)
        return float((self.base_leak_w * factors).sum())

    def total_batch(
        self,
        vdd: float,
        domains: np.ndarray,
        configs: np.ndarray,
    ) -> np.ndarray:
        """Leakage (W) of every BB assignment, shape (K,).

        *domains* maps cells to domain ids; *configs* is (K, num_domains)
        booleans, True = FBB.
        """
        domains = np.asarray(domains, dtype=np.int64)
        configs = np.asarray(configs, dtype=bool)
        f_nobb = self.library.leakage_factor(self.library.nobb_corner(vdd))
        f_fbb = self.library.leakage_factor(self.library.fbb_corner(vdd))
        # Leakage separates by domain: precompute each domain's base total.
        num_domains = configs.shape[1]
        domain_base = np.bincount(
            domains, weights=self.base_leak_w, minlength=num_domains
        )
        per_domain = np.where(configs, f_fbb, f_nobb) * domain_base[None, :]
        return per_domain.sum(axis=1)

    def total_batch_states(
        self,
        vdd: float,
        domains: np.ndarray,
        state_configs: np.ndarray,
        state_vbbs,
    ) -> np.ndarray:
        """Leakage (W) of every multi-Vth assignment, shape (K,).

        *state_configs* holds per-domain state indices into *state_vbbs*
        (back-bias voltages), the multi-Vth generalization of
        :meth:`total_batch`.
        """
        from repro.techlib.library import Corner

        domains = np.asarray(domains, dtype=np.int64)
        state_configs = np.asarray(state_configs, dtype=np.int64)
        factors = np.asarray(
            [
                self.library.leakage_factor(Corner(vdd, vbb))
                for vbb in state_vbbs
            ],
            dtype=np.float64,
        )
        num_domains = state_configs.shape[1]
        domain_base = np.bincount(
            domains, weights=self.base_leak_w, minlength=num_domains
        )
        per_domain = factors[state_configs] * domain_base[None, :]
        return per_domain.sum(axis=1)
